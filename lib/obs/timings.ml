let src = Logs.Src.create "lpalloc.obs" ~doc:"Trace-pipeline stage timings"

module Log = (val Logs.src_log src : Logs.LOG)

let on = Atomic.make false
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on
let now () = Unix.gettimeofday ()

type stage = { name : string; calls : int; seconds : float; items : int }

(* One mutex guards both tables: recording happens once per pipeline stage
   (not per event), so contention is negligible. *)
let lock = Mutex.create ()
let stage_tbl : (string, stage) Hashtbl.t = Hashtbl.create 16
let counter_tbl : (string, int) Hashtbl.t = Hashtbl.create 16

let rate items seconds =
  if seconds <= 0. || items = 0 then "" else Printf.sprintf " (%.3g items/s)" (float_of_int items /. seconds)

let record ~stage ?(items = 0) seconds =
  if enabled () then begin
    Mutex.protect lock (fun () ->
        let merged =
          match Hashtbl.find_opt stage_tbl stage with
          | Some s ->
              {
                s with
                calls = s.calls + 1;
                seconds = s.seconds +. seconds;
                items = s.items + items;
              }
          | None -> { name = stage; calls = 1; seconds; items }
        in
        Hashtbl.replace stage_tbl stage merged);
    Log.debug (fun m -> m "%s: %.4fs%s" stage seconds (rate items seconds))
  end

let time ~stage ?items f =
  if not (enabled ()) then f ()
  else begin
    let t0 = now () in
    let finally () = record ~stage ?items (now () -. t0) in
    Fun.protect ~finally f
  end

let count name n =
  if enabled () then
    Mutex.protect lock (fun () ->
        Hashtbl.replace counter_tbl name
          (n + Option.value ~default:0 (Hashtbl.find_opt counter_tbl name)))

let count_max name n =
  if enabled () then
    Mutex.protect lock (fun () ->
        Hashtbl.replace counter_tbl name
          (max n (Option.value ~default:min_int (Hashtbl.find_opt counter_tbl name))))

let note_peak_heap () =
  if enabled () then
    count_max "trace.peak_resident_words" (Gc.quick_stat ()).Gc.top_heap_words

let stages () =
  Mutex.protect lock (fun () -> Hashtbl.fold (fun _ s acc -> s :: acc) stage_tbl [])
  |> List.sort (fun a b -> String.compare a.name b.name)

let counters () =
  Mutex.protect lock (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) counter_tbl [])
  |> List.sort compare

let reset () =
  Mutex.protect lock (fun () ->
      Hashtbl.reset stage_tbl;
      Hashtbl.reset counter_tbl)

let pp_report ppf () =
  let ss = stages () and cs = counters () in
  if ss = [] && cs = [] then Format.fprintf ppf "timings: nothing recorded@."
  else begin
    Format.fprintf ppf "timings:@.";
    Format.fprintf ppf "  %-40s %6s %10s %12s %12s@." "stage" "calls" "seconds"
      "items" "items/s";
    List.iter
      (fun s ->
        let per_s =
          if s.seconds > 0. && s.items > 0 then
            Printf.sprintf "%.3g" (float_of_int s.items /. s.seconds)
          else "-"
        in
        Format.fprintf ppf "  %-40s %6d %10.4f %12d %12s@." s.name s.calls
          s.seconds s.items per_s)
      ss;
    if cs <> [] then begin
      Format.fprintf ppf "counters:@.";
      List.iter (fun (k, v) -> Format.fprintf ppf "  %-40s %12d@." k v) cs
    end
  end
