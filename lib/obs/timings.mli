(** Lightweight observability for the trace pipeline.

    Stages (trace load/store, per-allocator replay, simulation fan-out)
    record wall-clock spans and an item count (events, allocations), and
    named counters accumulate totals (bytes read, events replayed).  All
    entry points are safe to call from multiple domains; recording is a
    no-op until {!set_enabled}, so the replay hot path pays only a single
    atomic load when timings are off.

    Every recorded span is also emitted at debug level on the
    ["lpalloc.obs"] {!Logs} source, so long-running benches can stream
    stage timings; {!pp_report} prints the aggregate table (the [--timings]
    output of [lpalloc] and [bench/main.exe]). *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val now : unit -> float
(** Wall-clock seconds (monotonic enough for span measurement). *)

val record : stage:string -> ?items:int -> float -> unit
(** [record ~stage ~items seconds] adds one span to [stage]'s aggregate.
    [items] is the work processed (events, allocs); it feeds the
    items-per-second column of the report. *)

val time : stage:string -> ?items:int -> (unit -> 'a) -> 'a
(** Run the thunk, recording its wall-clock span when enabled. *)

val count : string -> int -> unit
(** Add to a named counter (e.g. ["trace.bytes_read"]). *)

val count_max : string -> int -> unit
(** Max-merge into a named counter: the counter becomes the largest value
    ever reported (e.g. ["trace.peak_resident_words"]). *)

val note_peak_heap : unit -> unit
(** Max-merge the GC's current [top_heap_words] into the
    ["trace.peak_resident_words"] counter.  Consumers call it after
    memory-intensive phases (trace load, replay, training), so the counter
    reports the peak OCaml-heap footprint the pipeline reached — the
    number the streaming paths exist to keep flat. *)

type stage = { name : string; calls : int; seconds : float; items : int }

val stages : unit -> stage list
(** Aggregated stages, sorted by name. *)

val counters : unit -> (string * int) list

val reset : unit -> unit

val pp_report : Format.formatter -> unit -> unit
(** Human-readable table of stages (calls, seconds, items, items/s) and
    counters.  Prints a placeholder line when nothing was recorded. *)
