(* Per-call and per-allocation bookkeeping costs, in simulated instructions.
   These model the base cost of calling conventions so that the
   "Instructions Executed" column of Table 2 scales with real work; the
   allocator-specific costs of Table 9 live in Lp_allocsim.Cost_model. *)
let call_cost = 4

type handle = int

type obj_state = Live of int (* size *) | Freed

type t = {
  funcs : Lp_callchain.Func.table;
  stack : Lp_callchain.Stack.t;
  builder : Lp_trace.Trace.Builder.t;
  mutable objects : obj_state array;
  mutable n_objects : int;
  mutable live : int;
  ref_ratio : float;
  mutable instr_count : int;
}

let create ?sink ?(ref_ratio = 0.25) ~program ~input () =
  let funcs = Lp_callchain.Func.create_table () in
  {
    funcs;
    stack = Lp_callchain.Stack.create funcs;
    builder = Lp_trace.Trace.Builder.create ?sink ~program ~input ~funcs ();
    objects = Array.make 1024 Freed;
    n_objects = 0;
    live = 0;
    ref_ratio;
    instr_count = 0;
  }

let func t name = Lp_callchain.Func.intern t.funcs name

let enter t id =
  Lp_callchain.Stack.push t.stack id;
  t.instr_count <- t.instr_count + call_cost;
  Lp_trace.Trace.Builder.instructions t.builder call_cost

let leave t = Lp_callchain.Stack.pop t.stack

let in_frame t id body =
  enter t id;
  match body () with
  | result ->
      leave t;
      result
  | exception e ->
      leave t;
      raise e

let alloc ?tag t ~size =
  if size <= 0 then invalid_arg "Runtime.alloc: size must be positive";
  let chain = Lp_trace.Trace.Builder.intern_chain t.builder
      (Lp_callchain.Stack.snapshot t.stack)
  in
  let key = Lp_callchain.Stack.encryption_key t.stack in
  let tag = Option.map (Lp_trace.Trace.Builder.intern_tag t.builder) tag in
  let obj = Lp_trace.Trace.Builder.alloc ?tag t.builder ~size ~chain ~key () in
  if obj >= Array.length t.objects then begin
    let grown = Array.make (2 * Array.length t.objects) Freed in
    Array.blit t.objects 0 grown 0 t.n_objects;
    t.objects <- grown
  end;
  t.objects.(obj) <- Live size;
  t.n_objects <- t.n_objects + 1;
  t.live <- t.live + 1;
  obj

let check_live t h op =
  if h < 0 || h >= t.n_objects then invalid_arg (op ^ ": unknown handle");
  match t.objects.(h) with
  | Live size -> size
  | Freed -> invalid_arg (op ^ ": object already freed")

let realloc ?tag t h ~new_size =
  let old_size = check_live t h "Runtime.realloc" in
  if new_size <= 0 then invalid_arg "Runtime.realloc: size must be positive";
  (* the resize site gets its own chain/key snapshot, like an allocation *)
  let chain =
    Lp_trace.Trace.Builder.intern_chain t.builder
      (Lp_callchain.Stack.snapshot t.stack)
  in
  let key = Lp_callchain.Stack.encryption_key t.stack in
  let tag = Option.map (Lp_trace.Trace.Builder.intern_tag t.builder) tag in
  Lp_trace.Trace.Builder.realloc ?tag t.builder ~new_size ~chain ~key ~obj:h ();
  t.objects.(h) <- Live new_size;
  old_size

let free t h =
  ignore (check_live t h "Runtime.free" : int);
  t.objects.(h) <- Freed;
  t.live <- t.live - 1;
  Lp_trace.Trace.Builder.free t.builder ~obj:h

let touch t h n =
  ignore (check_live t h "Runtime.touch" : int);
  (* n = 0 is a no-op: operations on empty values reference nothing *)
  if n > 0 then Lp_trace.Trace.Builder.touch t.builder ~obj:h n
  else if n < 0 then invalid_arg "Runtime.touch: negative count"

let non_heap_refs t n = Lp_trace.Trace.Builder.non_heap_refs t.builder n

let instructions t n =
  t.instr_count <- t.instr_count + n;
  Lp_trace.Trace.Builder.instructions t.builder n
let size_of t h = check_live t h "Runtime.size_of"
let live_objects t = t.live
let depth t = Lp_callchain.Stack.depth t.stack

let finish t =
  (* Computation-implied stack/global references (see the .mli). *)
  Lp_trace.Trace.Builder.non_heap_refs t.builder
    (int_of_float (t.ref_ratio *. float_of_int t.instr_count));
  Lp_trace.Trace.Builder.set_calls t.builder (Lp_callchain.Stack.calls t.stack);
  Lp_trace.Trace.Builder.finish t.builder
