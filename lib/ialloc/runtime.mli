(** The instrumented allocation runtime.

    This library plays the role Larus' AE trace-generation tool played in
    the paper: the workload programs route every simulated heap allocation,
    deallocation, and heap reference through it, and it maintains the
    dynamic call-stack so that each allocation is labelled with its raw
    call-chain and call-chain encryption key.

    Workloads bracket their functions with {!in_frame} (or {!enter}/
    {!leave}), create objects with {!alloc}, release them with {!free},
    and report heap accesses with {!touch}.  Stack and global accesses are
    reported with {!non_heap_refs}; abstract instruction work with
    {!instructions}.  {!finish} produces the {!Lp_trace.Trace.t} the
    analysis and simulation layers consume.

    Handles are dense object ids; the runtime checks against double frees
    and use-after-free in touch, so workload bugs surface as exceptions
    rather than as silently wrong traces. *)

type t

type handle = private int
(** An allocated, not-yet-freed object. *)

val create :
  ?sink:Lp_trace.Trace.Builder.sink ->
  ?ref_ratio:float ->
  program:string ->
  input:string ->
  unit ->
  t
(** [sink], when given, puts the underlying trace builder in streaming
    mode: events flow to the sink as they happen and {!finish} returns a
    summary trace with an empty event array (see
    {!Lp_trace.Trace.Builder}).

    [ref_ratio] (default 0.25) models the stack and global references
    implied by ordinary computation: every simulated instruction charged
    with {!instructions} also accrues [ref_ratio] non-heap references at
    {!finish} time.  Heap references are always explicit ({!touch});
    workloads tune the ratio so their heap-reference fraction lands in the
    regime the paper measured on SPARC (Table 2: 47–80%). *)

val func : t -> string -> Lp_callchain.Func.id
(** Intern a function name.  Workloads intern their functions once at
    start-up and reuse the ids. *)

val enter : t -> Lp_callchain.Func.id -> unit
(** Enter a function: pushes a stack frame, counts a call, charges the
    call-overhead instruction cost. *)

val leave : t -> unit
(** Leave the current function. *)

val in_frame : t -> Lp_callchain.Func.id -> (unit -> 'a) -> 'a
(** [in_frame t f body] runs [body] inside a frame for [f]; the frame is
    popped even if [body] raises. *)

val alloc : ?tag:string -> t -> size:int -> handle
(** Allocate a simulated object of [size] bytes (> 0), labelled with the
    current raw call-chain and encryption key.  The optional [tag] names the
    object's type (e.g. ["cell"], ["band_buffer"]) for the type-based
    prediction experiment the paper leaves to future work (§2).

    @raise Invalid_argument if [size <= 0]. *)

val realloc : ?tag:string -> t -> handle -> new_size:int -> int
(** Resize a live object to [new_size] bytes, keeping its handle: the
    emitted {!Lp_trace.Event.Realloc} carries the current call-chain and
    encryption key of the {i resize} site, and the object's lifetime
    spans the resize.  Returns the size the object had before.
    @raise Invalid_argument if the object is freed or [new_size <= 0]. *)

val free : t -> handle -> unit
(** Release an object.
    @raise Invalid_argument on double free. *)

val touch : t -> handle -> int -> unit
(** [touch t h n] records [n] heap references to [h].  [n = 0] is a no-op.
    @raise Invalid_argument if [h] was already freed or [n] is negative. *)

val non_heap_refs : t -> int -> unit
(** Record references to non-heap memory (locals, globals). *)

val instructions : t -> int -> unit
(** Record abstract computational work, in simulated instructions. *)

val size_of : t -> handle -> int
(** The size the object was allocated with. *)

val live_objects : t -> int
(** Number of currently-live objects. *)

val depth : t -> int
(** Current call-stack depth. *)

val finish : t -> Lp_trace.Trace.t
(** Seal the trace.  Live objects are left unfreed (they become the
    survivors of the run).  The runtime must not be used afterwards. *)
