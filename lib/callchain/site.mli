(** Allocation sites.

    The paper defines the allocation site as the call-chain to the allocation
    routine at an object's birth, together with the requested size (§3.2):
    the same chain allocating 8 bytes and 16 bytes is two distinct sites.

    A {!policy} selects which abstraction of the birth context keys the site:
    the complete cycle-eliminated chain (the paper's default), a length-N
    sub-chain (Table 6), size only (Table 5), or the 16-bit call-chain
    encryption key (Table 9's "Arena (cce)" column). *)

type policy =
  | Complete_chain  (** full chain, recursive cycles eliminated *)
  | Last_callers of int  (** length-N sub-chain of the raw stack, no elimination *)
  | Size_only  (** degenerate site: the size alone (Table 5) *)
  | Encrypted_key  (** Carter's XOR key over the whole stack (§5.1) *)

type t = private {
  chain : Chain.t;  (** empty under [Size_only]; singleton key under [Encrypted_key] *)
  size : int;
  hash : int;
}
(** A site key.  [hash] is precomputed; equality compares chain and size. *)

val make : policy -> raw_chain:Chain.t -> key:int -> size:int -> t
(** [make policy ~raw_chain ~key ~size] builds the site for an allocation of
    [size] bytes whose raw stack snapshot was [raw_chain] and whose
    encryption key was [key]. *)

val with_size : t -> int -> t
(** [with_size t size] is [t] re-keyed with [size] (used for size rounding
    when mapping sites across runs). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val round_size : multiple:int -> int -> int
(** [round_size ~multiple n] rounds [n] up to a multiple of [multiple].  The
    paper rounds sizes to a multiple of four when mapping sites between
    training and test runs (§4.1); rounding coarser loses too much size
    information. *)

val to_string : Func.table -> t -> string

module Table : Hashtbl.S with type key = t
(** Hash tables keyed by sites — the paper's "small hash-table" site
    database (§5.1). *)

val policy_to_string : policy -> string

val policy_of_string : string -> policy option
(** Inverse of {!policy_to_string} ([None] on an unrecognised name or a
    non-positive [last-N-callers] length) — how consumers of a model file
    recover the site policy the model was trained under. *)
