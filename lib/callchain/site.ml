type policy =
  | Complete_chain
  | Last_callers of int
  | Size_only
  | Encrypted_key

type t = { chain : Chain.t; size : int; hash : int }

let compute_hash chain size =
  let h = Chain.hash chain in
  (h * 31) + size land max_int

let make policy ~(raw_chain : Chain.t) ~key ~size =
  let chain =
    match policy with
    | Complete_chain -> Chain.eliminate_cycles raw_chain
    | Last_callers n -> Chain.last raw_chain n
    | Size_only -> [||]
    | Encrypted_key -> [| key |]
  in
  { chain; size; hash = compute_hash chain size }

let with_size t size = { t with size; hash = compute_hash t.chain size }

let equal a b = a.size = b.size && a.hash = b.hash && Chain.equal a.chain b.chain

let compare a b =
  let c = Stdlib.compare a.size b.size in
  if c <> 0 then c else Chain.compare a.chain b.chain

let hash t = t.hash

let round_size ~multiple n =
  if multiple <= 0 then invalid_arg "Site.round_size: multiple must be positive";
  (n + multiple - 1) / multiple * multiple

let to_string tbl t =
  if Array.length t.chain = 0 then Printf.sprintf "[size=%d]" t.size
  else Printf.sprintf "[%s; size=%d]" (Chain.to_string tbl t.chain) t.size

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

let policy_to_string = function
  | Complete_chain -> "complete-chain"
  | Last_callers n -> Printf.sprintf "last-%d-callers" n
  | Size_only -> "size-only"
  | Encrypted_key -> "encrypted-key"

let policy_of_string = function
  | "complete-chain" -> Some Complete_chain
  | "size-only" -> Some Size_only
  | "encrypted-key" -> Some Encrypted_key
  | s ->
      Scanf.sscanf_opt s "last-%d-callers%!" (fun n ->
          if n >= 1 then Some (Last_callers n) else None)
      |> Option.join
