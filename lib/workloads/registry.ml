type program = {
  name : string;
  description : string;
  input_notes : string;
  run :
    ?sink:Lp_trace.Trace.Builder.sink ->
    ?scale:float ->
    input:string ->
    unit ->
    Lp_trace.Trace.t;
}

let programs =
  [
    {
      name = "cfrac";
      description =
        "Factors products of two primes with the continued-fraction method \
         (Morrison-Brillhart), over an instrumented multi-precision integer \
         substrate.";
      input_notes =
        "Train and test factor different semiprimes of different magnitudes.";
      run = Cfrac.run;
    };
    {
      name = "espresso";
      description =
        "Two-level logic minimizer: EXPAND / IRREDUNDANT / REDUCE over a \
         bit-pair cube algebra with unate-recursive tautology and \
         complementation.";
      input_notes =
        "Train and test minimize different PLA batteries (different random \
         functions and adder widths).";
      run = Espresso.run;
    };
    {
      name = "gawk";
      description =
        "AWK interpreter (lexer, parser, tree-walking evaluator with \
         heap-allocated value cells) running a paragraph-filling and \
         word-frequency script.";
      input_notes =
        "The SAME script on different dictionaries, like the paper's GAWK \
         inputs; true prediction should match self prediction.";
      run = Gawk.run;
    };
    {
      name = "ghost";
      description =
        "PostScript interpreter with operand/dict stacks, path construction, \
         curve flattening, and a banded scanline rasterizer (6 KB band \
         buffers).";
      input_notes =
        "Train renders a rule-heavy reference manual, test a prose-heavy \
         thesis: same interpreter, different page mixes.";
      run = Ghost.run;
    };
    {
      name = "perl";
      description =
        "Perl-style report-extraction interpreter with arrays, hashes, \
         subroutines and a backtracking regular-expression engine.";
      input_notes =
        "TWO DISTINCT scripts (sort-and-count vs. paragraph formatting with \
         regex extraction), like the paper's PERL inputs; true prediction \
         should degrade sharply.";
      run = Perl.run;
    };
    {
      name = "pint";
      description =
        "Dispatch-table AST interpreter whose scope frames, auto-vivified \
         reference chains, and growable vectors and string buffers emit \
         deep-chain allocations and first-class realloc sequences.";
      input_notes =
        "Train runs a vector-heavy program, test a string- and \
         vivification-heavy one: same interpreter, different programs. \
         The only workload whose traces carry Realloc events.";
      run = Pint.run;
    };
  ]

let find name = List.find (fun p -> p.name = name) programs
let names = List.map (fun p -> p.name) programs

let cache : (string * string * float, Lp_trace.Trace.t) Hashtbl.t = Hashtbl.create 16

let trace ?(scale = 1.0) ~program ~input () =
  let key = (program, input, scale) in
  match Hashtbl.find_opt cache key with
  | Some t -> t
  | None ->
      let p = find program in
      let t = p.run ~scale ~input () in
      Hashtbl.replace cache key t;
      t

let clear_cache () = Hashtbl.reset cache

(* Streaming access deliberately bypasses the memo cache: a source is
   single-shot and the whole point is never holding the event array. *)
let source ?(scale = 1.0) ~program ~input () =
  let p = find program in
  Lp_trace.Source.of_generator ~program:p.name ~input (fun ~sink ->
      p.run ~sink ~scale ~input ())
