module Rt = Lp_ialloc.Runtime

type summary = { pages : int; bands : int; output_chars : int }

let interpret rt ~source =
  let interp = Ps_interp.create rt in
  Ps_interp.run interp source;
  {
    pages = Ps_interp.pages interp;
    bands = Ps_interp.bands_painted interp;
    output_chars = String.length source;
  }

(* -- synthetic documents ----------------------------------------------------- *)

(* The prolog is deliberately layered (tl -> placetext -> show;
   box -> rectpath -> fill), as real document prologs are: length-1
   call-chains see only the innermost wrapper, so prediction needs depth —
   the effect Table 6 measures. *)
let prolog =
  {ps|
% prolog: procedures shared by the page bodies
/FS 10 def
/setsize { /FS exch def /Times findfont FS scalefont setfont } def
/placetext { moveto show } def
/tl { placetext } def                            % (text) x y tl
/rectpath { newpath moveto
            dup 0 rlineto exch 0 exch rlineto neg 0 rlineto
            closepath } def                      % w h x y rectpath
/box { rectpath fill } def                       % w h x y box
/rule { newpath moveto 0 rlineto stroke } def    % w x y rule
/vline { newpath moveto 0 exch rlineto stroke } def
/frame { gsave 0.5 setlinewidth rectpath stroke grestore } def
/swirl { newpath moveto curveto stroke } def
/pagenum { 3 string cvs 306 30 placetext } def
/heading { gsave 14 setsize placetext grestore 10 setsize } def
|ps}

(* A text line: words drawn from the corpus, placed with tl. *)
let text_line rng words buf ~y ~indent =
  let n = Prng.in_range rng 6 12 in
  let text =
    String.concat " " (List.init n (fun _ -> Prng.choose rng words))
  in
  Printf.bprintf buf "(%s) %d %d tl\n" text indent y

let manual_page rng words buf ~page =
  Printf.bprintf buf "%% page %d (manual style)\n" page;
  Printf.bprintf buf "%d setsize\n" (if page mod 7 = 0 then 9 else 10);
  (* heading *)
  Printf.bprintf buf "(%s %d) 72 740 heading\n" (Prng.choose rng words) page;
  Printf.bprintf buf "468 72 728 rule\n";
  (* two columns of short entries with rules and boxes *)
  let y = ref 700 in
  while !y > 90 do
    let col = if Prng.bool rng then 72 else 320 in
    text_line rng words buf ~y:!y ~indent:col;
    if Prng.float rng < 0.30 then Printf.bprintf buf "%d 4 %d %d box\n"
        (Prng.in_range rng 30 180) col (!y - 6);
    if Prng.float rng < 0.20 then Printf.bprintf buf "200 %d %d rule\n" col (!y - 8);
    if Prng.float rng < 0.08 then
      Printf.bprintf buf "gsave 0.8 setgray %d 24 %d %d box grestore\n"
        (Prng.in_range rng 60 200) col (!y - 30);
    y := !y - Prng.in_range rng 14 22
  done;
  (* table frame *)
  if page mod 3 = 0 then Printf.bprintf buf "400 120 100 420 frame\n";
  Printf.bprintf buf "%d pagenum\nshowpage\n" page

let thesis_page rng words buf ~page =
  Printf.bprintf buf "%% page %d (thesis style)\n" page;
  Printf.bprintf buf "%d setsize\n" (if page mod 9 = 0 then 12 else 11);
  if page mod 12 = 1 then
    Printf.bprintf buf "gsave 18 setsize (Chapter %d) 72 700 placetext grestore\n"
      ((page / 12) + 1);
  let y = ref 680 in
  while !y > 80 do
    (* paragraphs: several full-width lines then a gap *)
    let lines = Prng.in_range rng 3 7 in
    for i = 0 to lines - 1 do
      if !y > 80 then begin
        text_line rng words buf ~y:!y ~indent:(if i = 0 then 90 else 72);
        y := !y - 14
      end
    done;
    y := !y - 8;
    (* the occasional figure: a framed box with a curve inside *)
    if Prng.float rng < 0.12 && !y > 220 then begin
      Printf.bprintf buf "300 120 140 %d frame\n" (!y - 130);
      Printf.bprintf buf "%d %d %d %d %d %d %d %d swirl\n" (160 + Prng.int rng 60)
        (!y - 40) (240 + Prng.int rng 60) (!y - 120) (320 + Prng.int rng 60)
        (!y - 40) (150 + Prng.int rng 40) (!y - 110);
      y := !y - 140
    end
  done;
  Printf.bprintf buf "%d pagenum\nshowpage\n" page

let document ~style ~pages ~seed =
  let rng = Prng.of_string seed in
  let words = Corpus.dictionary (Prng.split rng) 600 in
  let buf = Buffer.create (64 * 1024) in
  Buffer.add_string buf "%!PS-MiniGhost-1.0\n";
  Buffer.add_string buf prolog;
  for page = 1 to pages do
    match style with
    | `Manual -> manual_page rng words buf ~page
    | `Thesis -> thesis_page rng words buf ~page
  done;
  Buffer.contents buf

let input_spec = function
  | "tiny" -> (`Thesis, 2, "ghost-tiny")
  | "train" -> (`Manual, 60, "ghost-refman")
  | "test" -> (`Thesis, 110, "ghost-thesis")
  | name -> invalid_arg ("Ghost.run: unknown input " ^ name)

let inputs = [ "tiny"; "train"; "test" ]

let run ?sink ?(scale = 1.0) ~input () =
  let style, pages, seed = input_spec input in
  let pages = max 1 (int_of_float (float_of_int pages *. scale)) in
  let source = document ~style ~pages ~seed in
  let rt = Rt.create ?sink ~ref_ratio:0.12 ~program:"ghost" ~input () in
  let (_ : summary) = interpret rt ~source in
  Rt.finish rt
