module Rt = Lp_ialloc.Runtime

type stats = {
  initial_cubes : int;
  final_cubes : int;
  initial_literals : int;
  final_literals : int;
  passes : int;
  final_cover : string list;  (* positional notation, for verification *)
}

type st = {
  rt : Rt.t;
  ctx : Cube.ctx;
  f_expand : Lp_callchain.Func.id;
  f_irred : Lp_callchain.Func.id;
  f_reduce : Lp_callchain.Func.id;
  f_main : Lp_callchain.Func.id;
}

(* EXPAND: for each cube, try raising each literal to don't-care; keep the
   raise if the expanded cube stays disjoint from the off-set.  Expanded
   cubes may cover siblings, which irredundant will then drop. *)
let expand st off_set cover =
  Rt.in_frame st.rt st.f_expand (fun () ->
      let ctx = st.ctx in
      Cube.with_workspace ctx (List.length cover) @@ fun () ->
      List.map
        (fun c ->
          let cur = ref (Cube.copy ctx c) in
          for v = 0 to Cube.n_vars ctx - 1 do
            match Cube.get !cur v with
            | `Zero | `One ->
                let raised = Cube.set ctx !cur v `Dash in
                let clashes =
                  List.exists
                    (fun r ->
                      match Cube.intersect ctx raised r with
                      | Some i ->
                          Cube.release ctx i;
                          true
                      | None -> false)
                    off_set
                in
                if clashes then Cube.release ctx raised
                else begin
                  Cube.release ctx !cur;
                  cur := raised
                end
            | `Dash | `Empty -> ()
          done;
          !cur)
        cover)

(* IRREDUNDANT: drop any cube covered by the union of the others.  A simple
   quadratic sweep using the tautology-based containment test. *)
let irredundant st cover =
  Rt.in_frame st.rt st.f_irred (fun () ->
      let ctx = st.ctx in
      Cube.with_workspace ctx (List.length cover) @@ fun () ->
      let rec sweep kept = function
        | [] -> List.rev kept
        | c :: rest ->
            let others = List.rev_append kept rest in
            if others <> [] && Cube.covers_cube ctx others c then begin
              Cube.release ctx c;
              sweep kept rest
            end
            else sweep (c :: kept) rest
      in
      sweep [] cover)

(* REDUCE: shrink each cube to the smallest cube still covering the part of
   the on-set no other cube covers.  We lower literals one at a time,
   keeping a lowering only if the rest of the cover plus the lowered cube
   still covers the original cube. *)
let reduce st cover =
  Rt.in_frame st.rt st.f_reduce (fun () ->
      let ctx = st.ctx in
      Cube.with_workspace ctx (List.length cover) @@ fun () ->
      let rec sweep done_ = function
        | [] -> List.rev done_
        | c :: rest ->
            let others = List.rev_append done_ rest in
            let cur = ref (Cube.copy ctx c) in
            for v = 0 to Cube.n_vars ctx - 1 do
              match Cube.get !cur v with
              | `Dash ->
                  (* try each phase; keep the first lowering that preserves
                     coverage of c by (others + lowered) *)
                  let try_phase lit =
                    let lowered = Cube.set ctx !cur v lit in
                    if Cube.covers_cube ctx (lowered :: others) c then begin
                      Cube.release ctx !cur;
                      cur := lowered;
                      true
                    end
                    else begin
                      Cube.release ctx lowered;
                      false
                    end
                  in
                  if not (try_phase `One) then ignore (try_phase `Zero : bool)
              | _ -> ()
            done;
            Cube.release ctx c;
            sweep (!cur :: done_) rest
      in
      sweep [] cover)

let minimize rt ~n_vars ~on_set =
  let ctx = Cube.make_ctx rt ~n_vars in
  let st =
    {
      rt;
      ctx;
      f_expand = Rt.func rt "expand";
      f_irred = Rt.func rt "irredundant";
      f_reduce = Rt.func rt "reduce";
      f_main = Rt.func rt "espresso_main";
    }
  in
  Rt.in_frame st.rt st.f_main (fun () ->
      let cover = List.map (Cube.of_string ctx) on_set in
      let initial_cubes, initial_literals = Cube.cover_cost cover in
      (* Off-set once, by complementation (no don't-care set). *)
      let off_set = Cube.complement ctx cover in
      let passes = ref 0 in
      let current = ref cover in
      let best_cost = ref (Cube.cover_cost cover) in
      let improved = ref true in
      while !improved && !passes < 8 do
        incr passes;
        let expanded = expand st off_set !current in
        Cube.release_cover ctx !current;
        let irred = irredundant st expanded in
        let reduced = reduce st irred in
        let expanded2 = expand st off_set reduced in
        Cube.release_cover ctx reduced;
        let final = irredundant st expanded2 in
        current := final;
        let cost = Cube.cover_cost final in
        if cost < !best_cost then best_cost := cost else improved := false
      done;
      let final_cubes, final_literals = Cube.cover_cost !current in
      let final_cover = List.map (Cube.to_string ctx) !current in
      Cube.release_cover ctx !current;
      Cube.release_cover ctx off_set;
      { initial_cubes; final_cubes; initial_literals; final_literals;
        passes = !passes; final_cover })

(* -- synthetic PLAs --------------------------------------------------------- *)

(* Random cube in positional notation, biased towards literals so the
   function has structure to minimize. *)
let random_cube rng n_vars =
  String.init n_vars (fun _ ->
      let r = Prng.float rng in
      if r < 0.42 then '0' else if r < 0.84 then '1' else '-')

let random_pla rng ~n_vars ~n_cubes =
  List.init n_cubes (fun _ -> random_cube rng n_vars)

(* A structured PLA: the carry-out of an n-bit ripple adder, as minterm-ish
   cubes.  Variables: a_0..a_{k-1}, b_0..b_{k-1}. *)
let adder_carry_pla ~k =
  (* carry out of a_i + b_i with ripple: enumerate (a, b) pairs and emit the
     minterms where carry_out = 1; on k bits this is dense and gives the
     minimizer real work. *)
  let n_vars = 2 * k in
  let cubes = ref [] in
  for a = 0 to (1 lsl k) - 1 do
    for b = 0 to (1 lsl k) - 1 do
      if a + b >= 1 lsl k then begin
        let cube =
          String.init n_vars (fun v ->
              if v < k then if (a lsr v) land 1 = 1 then '1' else '0'
              else if (b lsr (v - k)) land 1 = 1 then '1'
              else '0')
        in
        cubes := cube :: !cubes
      end
    done
  done;
  (n_vars, !cubes)

type pla = { n_vars : int; on_set : string list }

let input_plas input : pla list =
  match input with
  | "tiny" ->
      let rng = Prng.of_string "espresso-tiny" in
      [ { n_vars = 4; on_set = random_pla rng ~n_vars:4 ~n_cubes:6 } ]
  | "train" ->
      let rng = Prng.of_string "espresso-train" in
      let n1, adder = adder_carry_pla ~k:3 in
      [
        { n_vars = 8; on_set = random_pla rng ~n_vars:8 ~n_cubes:24 };
        { n_vars = n1; on_set = adder };
        { n_vars = 9; on_set = random_pla rng ~n_vars:9 ~n_cubes:30 };
        { n_vars = 10; on_set = random_pla rng ~n_vars:10 ~n_cubes:36 };
        { n_vars = 7; on_set = random_pla rng ~n_vars:7 ~n_cubes:20 };
      ]
  | "test" ->
      let rng = Prng.of_string "espresso-test" in
      let n1, adder = adder_carry_pla ~k:4 in
      let n2, adder3 = adder_carry_pla ~k:3 in
      [
        { n_vars = 9; on_set = random_pla rng ~n_vars:9 ~n_cubes:32 };
        { n_vars = n1; on_set = adder };
        { n_vars = 10; on_set = random_pla rng ~n_vars:10 ~n_cubes:40 };
        { n_vars = 8; on_set = random_pla rng ~n_vars:8 ~n_cubes:28 };
        { n_vars = 11; on_set = random_pla rng ~n_vars:11 ~n_cubes:44 };
        { n_vars = n2; on_set = adder3 };
        { n_vars = 9; on_set = random_pla rng ~n_vars:9 ~n_cubes:36 };
        { n_vars = 10; on_set = random_pla rng ~n_vars:10 ~n_cubes:34 };
        { n_vars = 7; on_set = random_pla rng ~n_vars:7 ~n_cubes:24 };
        { n_vars = 12; on_set = random_pla rng ~n_vars:12 ~n_cubes:40 };
      ]
  | name -> invalid_arg ("Espresso.run: unknown input " ^ name)

let inputs = [ "tiny"; "train"; "test" ]

let run ?sink ?(scale = 1.0) ~input () =
  let plas = input_plas input in
  let plas =
    if scale >= 1.0 then plas
    else begin
      (* keep a prefix of the battery for scaled-down test runs *)
      let keep = max 1 (int_of_float (scale *. float_of_int (List.length plas))) in
      List.filteri (fun i _ -> i < keep) plas
    end
  in
  let rt = Rt.create ?sink ~ref_ratio:0.06 ~program:"espresso" ~input () in
  List.iter (fun { n_vars; on_set } -> ignore (minimize rt ~n_vars ~on_set : stats)) plas;
  Rt.finish rt
