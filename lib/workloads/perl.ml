module Rt = Lp_ialloc.Runtime

(* Sort the lines of a file, reporting duplicate counts and a few regex
   statistics — a classic report-extraction one-liner grown up. *)
let sort_script =
  {perl|
my $n = 0;
while (<>) {
  chomp($_);
  push(@lines, $_);
  $n = $n + 1;
  if ($_ =~ /^([a-f])/) { $initial{$1} = $initial{$1} + 1; }
}
@sorted = sort(@lines);
my $prev = "";
my $dups = 0;
foreach $l (@sorted) {
  if ($l eq $prev) { $dups = $dups + 1; }
  else { print($l); }
  $prev = $l;
}
printf("%d lines, %d duplicates\n", $n, $dups);
foreach $k (sort(keys(%initial))) {
  printf("%s: %d\n", $k, $initial{$k});
}
|perl}

(* Format dictionary words into filled paragraphs, tallying vowel runs. *)
let format_script =
  {perl|
sub flush_line {
  if ($len > 0) { print($line); $line = ""; $len = 0; $out = $out + 1; }
}

sub add_word {
  my $w = shift;
  my $k = length($w);
  if ($len + $k + 1 > 70) { flush_line(); }
  if ($len == 0) { $line = $w; $len = $k; }
  else { $line = $line . " " . $w; $len = $len + $k + 1; }
}

while (<>) {
  chomp($_);
  @words = split(/ /, $_);
  foreach $w (@words) {
    if ($w =~ /([aeiou][aeiou]*)/) {
      $vowels{$1} = $vowels{$1} + 1;
    }
    $w =~ s/ch/k/;
    add_word($w);
    $total = $total + 1;
  }
}
flush_line();
printf("%d words in %d lines\n", $total, $out);
foreach $k (sort(keys(%vowels))) {
  printf("%s %d\n", $k, $vowels{$k});
}
|perl}

let run_script rt ~script ~stdin =
  let program = Perl_parser.parse script in
  let interp = Perl_interp.create rt program in
  Perl_interp.run interp ~stdin

let input_spec = function
  | "tiny" -> (sort_script, "perl-tiny", 200, 1)
  | "train" -> (sort_script, "perl-sortfile", 8_000, 1)
  | "test" -> (format_script, "perl-dict", 12_000, 4)
  | name -> invalid_arg ("Perl.run: unknown input " ^ name)

let inputs = [ "tiny"; "train"; "test" ]

let run ?sink ?(scale = 1.0) ~input () =
  let script, seed, n_lines, words_per_line = input_spec input in
  let n_lines = max 20 (int_of_float (float_of_int n_lines *. scale)) in
  let rng = Prng.of_string seed in
  let vocab = Corpus.dictionary rng (max 16 (n_lines / 12)) in
  let lines =
    Array.init n_lines (fun _ ->
        String.concat " "
          (List.init (Prng.in_range rng 1 (2 * words_per_line))
             (fun _ -> Prng.choose rng vocab)))
  in
  let rt = Rt.create ?sink ~ref_ratio:0.0 ~program:"perl" ~input () in
  let (_ : string) = run_script rt ~script ~stdin:lines in
  Rt.finish rt
