(** PINT: a dispatch-table AST interpreter, the realloc-bearing workload.

    The paper's five programs predate [realloc]-centric idioms; PINT
    supplies them.  It is a small dynamic-language interpreter in the
    Plang / language-p mould: an opcode-indexed handler table drives
    evaluation, calls allocate scope frames freed on return, undefined
    global paths auto-vivify into chains of reference cells, and vectors
    and string buffers grow (and shrink) their backing stores through
    {!Lp_ialloc.Runtime.realloc} — so its traces carry first-class
    {!Lp_trace.Event.Realloc} events alongside deep-chain allocations.

    The [train] input runs a vector-heavy program; [test] runs a string-
    and vivification-heavy one: same interpreter, different programs,
    like the paper's PERL pair. *)

val inputs : string list

val run :
  ?sink:Lp_trace.Trace.Builder.sink ->
  ?scale:float ->
  input:string ->
  unit ->
  Lp_trace.Trace.t
(** @raise Invalid_argument on an unknown input name. *)
