(** CFRAC: continued-fraction integer factorization (Morrison–Brillhart).

    This workload stands in for the paper's CFRAC program ("factors large
    integers using the continued fraction method", inputs "20–40 digit
    numbers that were the product of two primes").  The implementation is a
    genuine factorizer: it expands the continued fraction of [sqrt(k*N)],
    trial-divides the residues [Q_n] over a factor base, and combines smooth
    relations by Gaussian elimination over GF(2) until a congruence of
    squares splits [N].

    All multi-precision values live on the instrumented heap ({!Bignum}), so
    the allocation behaviour mirrors the original: an enormous number of
    tiny, almost-all-short-lived objects (temporaries of the recurrences and
    trial divisions) plus a few extremely long-lived ones (the factor base
    and the accumulated relations) — the highly skewed lifetime distribution
    the paper singles CFRAC out for. *)

type result = {
  factor : string option;  (** a nontrivial factor of the input, in decimal *)
  relations_found : int;
  iterations : int;
}

val factor_string : Lp_ialloc.Runtime.t -> n:string -> max_iters:int -> result
(** Factor the decimal number [n] on the given runtime.  [max_iters] bounds
    the continued-fraction iterations per multiplier so tracing terminates
    even on hostile inputs. *)

val inputs : string list
(** Named input sets, smallest first. *)

val run :
  ?sink:Lp_trace.Trace.Builder.sink ->
  ?scale:float ->
  input:string ->
  unit ->
  Lp_trace.Trace.t
(** Run the workload on a named input and return its allocation trace.
    [scale] (default 1.0) scales the iteration budget down for quick tests.

    @raise Invalid_argument on an unknown input name. *)
