module Rt = Lp_ialloc.Runtime
module Bn = Bignum

(* -- small-prime machinery (factor base construction) --------------------- *)

(* Sieve of Eratosthenes up to [bound], charged as non-heap work: the factor
   base itself is the long-lived heap object; the sieve is a stack array. *)
let primes_upto rt bound =
  let sieve = Array.make (bound + 1) true in
  sieve.(0) <- false;
  if bound >= 1 then sieve.(1) <- false;
  let i = ref 2 in
  while !i * !i <= bound do
    if sieve.(!i) then begin
      let j = ref (!i * !i) in
      while !j <= bound do
        sieve.(!j) <- false;
        j := !j + !i
      done
    end;
    incr i
  done;
  Rt.instructions rt bound;
  Rt.non_heap_refs rt bound;
  let out = ref [] in
  for p = bound downto 2 do
    if sieve.(p) then out := p :: !out
  done;
  !out

(* Legendre symbol (n/p) for odd prime p, by modular exponentiation on
   machine ints (p is small).  Returns -1, 0 or 1. *)
let legendre rt n_mod_p p =
  let rec pow_mod b e m acc =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then acc * b mod m else acc in
      pow_mod (b * b mod m) (e lsr 1) m acc
    end
  in
  Rt.instructions rt 30;
  if n_mod_p = 0 then 0
  else begin
    let r = pow_mod n_mod_p ((p - 1) / 2) p 1 in
    if r = 1 then 1 else -1
  end

(* -- relations and GF(2) elimination -------------------------------------- *)

(* A relation A^2 = (-1)^s * prod p_i^e_i (mod N).  The exponent vector
   lives on the instrumented heap as a bitset (these are the medium-lived
   objects of CFRAC); exponents are kept in full for the square root. *)
type relation = {
  id : int;  (* serial, for canonicalising dependency combinations *)
  a : Bn.t;  (* A_{n-1} mod N *)
  exponents : (int * int) list;  (* (factor-base index, exponent), sparse *)
  sign : bool;  (* true when n odd: Q_n enters with sign -1 *)
  extra_y : int;
      (* large-prime variation: a relation merged from two partials carries
         the shared large prime squared, which contributes [extra_y] to the
         square root Y (1 when the relation is fully smooth) *)
  vec_handle : Rt.handle;  (* simulated heap bitset *)
  vec : int array;  (* exponents mod 2, packed, index 0 = sign bit *)
}

let make_relation rt ~id ~fb_size ?(extra_y = 1) ~a ~exponents ~sign () =
  let words = (fb_size + 1 + 62) / 63 in
  let vec = Array.make words 0 in
  let set_bit i = vec.(i / 63) <- vec.(i / 63) lor (1 lsl (i mod 63)) in
  if sign then set_bit 0;
  List.iter (fun (idx, e) -> if e land 1 = 1 then set_bit (idx + 1)) exponents;
  let vec_handle = Rt.alloc rt ~size:(8 + (8 * words)) in
  Rt.touch rt vec_handle words;
  { id; a; exponents; sign; extra_y; vec_handle; vec }

let vec_is_zero v = Array.for_all (fun w -> w = 0) v

let vec_xor rt dst src =
  Array.iteri (fun i w -> dst.(i) <- dst.(i) lxor w) src;
  Rt.instructions rt (Array.length src)

let lowest_set_bit v =
  let rec go i =
    if i = Array.length v then None
    else if v.(i) = 0 then go (i + 1)
    else begin
      let rec bit b = if v.(i) land (1 lsl b) <> 0 then b else bit (b + 1) in
      Some ((i * 63) + bit 0)
    end
  in
  go 0

(* -- the factorization proper --------------------------------------------- *)

type result = {
  factor : string option;
  relations_found : int;
  iterations : int;
}

type state = {
  rt : Rt.t;
  ctx : Bn.ctx;
  f_main : Lp_callchain.Func.id;
  f_cf : Lp_callchain.Func.id;  (* continued-fraction step *)
  f_smooth : Lp_callchain.Func.id;  (* trial division *)
  f_elim : Lp_callchain.Func.id;  (* gaussian elimination *)
  f_final : Lp_callchain.Func.id;  (* congruence of squares *)
}

(* Trial-divide [q] over the factor base.  Returns the sparse exponent
   list plus the remaining cofactor: [`Smooth] when it is 1, [`Partial lp]
   when a single large prime below the large-prime bound remains
   (Morrison-Brillhart's large-prime variation), [`Rough] otherwise. *)
let trial_divide st fb ~lp_bound q0 =
  Rt.in_frame st.rt st.f_smooth (fun () ->
      let ctx = st.ctx in
      let cur = ref (Bn.copy ctx q0) in
      let exps = ref [] in
      Array.iteri
        (fun idx p ->
          if Bn.rem_small ctx !cur p = 0 then begin
            let e = ref 0 in
            while Bn.rem_small ctx !cur p = 0 do
              let q, _ = Bn.divmod_small ctx !cur p in
              Bn.release ctx !cur;
              cur := q;
              incr e
            done;
            exps := (idx, !e) :: !exps
          end)
        fb;
      let cofactor = Bn.to_int !cur in
      Bn.release ctx !cur;
      match cofactor with
      | Some 1 -> `Smooth (List.rev !exps)
      | Some lp when lp < lp_bound -> `Partial (List.rev !exps, lp)
      | _ -> `Rough)

(* Gaussian elimination over GF(2): find a subset of relations whose
   combined exponent vector is zero.  Standard streaming elimination with a
   pivot table; each incoming relation is reduced against existing pivots
   and either becomes a new pivot or yields a dependency. *)
(* Combining two dependency histories over GF(2): a relation appearing an
   even number of times cancels, so combos stay canonical (each relation at
   most once) and congruence attempts stay linear in the factor-base rank. *)
let canonicalise combo =
  let parity = Hashtbl.create 16 in
  List.iter
    (fun rel ->
      match Hashtbl.find_opt parity rel.id with
      | Some _ -> Hashtbl.remove parity rel.id
      | None -> Hashtbl.replace parity rel.id rel)
    combo;
  Hashtbl.fold (fun _ rel acc -> rel :: acc) parity []

let find_dependency st pivots rel =
  Rt.in_frame st.rt st.f_elim (fun () ->
      let combo = ref [ rel ] in
      let v = Array.copy rel.vec in
      Rt.instructions st.rt (Array.length v);
      let continue = ref true in
      let result = ref None in
      while !continue do
        if vec_is_zero v then begin
          result := Some (canonicalise !combo);
          continue := false
        end
        else begin
          match lowest_set_bit v with
          | None ->
              result := Some (canonicalise !combo);
              continue := false
          | Some bit -> begin
              match Hashtbl.find_opt pivots bit with
              | Some (pivot_vec, pivot_rels) ->
                  vec_xor st.rt v pivot_vec;
                  combo := List.rev_append pivot_rels !combo
              | None ->
                  Hashtbl.add pivots bit (v, canonicalise !combo);
                  continue := false
            end
        end
      done;
      !result)

(* Given a dependency (multiset of relations), build X = prod A_i mod N and
   Y = sqrt(prod +-Q_i) mod N, then try gcd(X - Y, N). *)
let try_congruence st ~n ~fb combo =
  Rt.in_frame st.rt st.f_final (fun () ->
      let ctx = st.ctx in
      (* X = product of the A values, mod N. *)
      let x = ref (Bn.of_int ctx 1) in
      List.iter
        (fun rel ->
          let nx = Bn.mul_mod ctx !x rel.a n in
          Bn.release ctx !x;
          x := nx)
        combo;
      (* Combined exponents (they are even by construction, as is the count
         of negative signs). *)
      let total = Hashtbl.create 16 in
      List.iter
        (fun rel ->
          List.iter
            (fun (idx, e) ->
              Hashtbl.replace total idx (e + Option.value ~default:0 (Hashtbl.find_opt total idx)))
            rel.exponents)
        combo;
      let y = ref (Bn.of_int ctx 1) in
      Hashtbl.iter
        (fun idx e ->
          let p = Bn.of_int ctx fb.(idx) in
          for _ = 1 to e / 2 do
            let ny = Bn.mul_mod ctx !y p n in
            Bn.release ctx !y;
            y := ny
          done;
          Bn.release ctx p)
        total;
      (* large primes from merged partial relations enter Y once each *)
      List.iter
        (fun rel ->
          if rel.extra_y <> 1 then begin
            let lp = Bn.of_int ctx rel.extra_y in
            let ny = Bn.mul_mod ctx !y lp n in
            Bn.release ctx !y;
            Bn.release ctx lp;
            y := ny
          end)
        combo;
      (* gcd(X - Y mod N, N) *)
      let diff =
        if Bn.compare ctx !x !y >= 0 then Bn.sub ctx !x !y
        else Bn.sub ctx !y !x
      in
      let g = Bn.gcd ctx diff n in
      Bn.release ctx diff;
      Bn.release ctx !x;
      Bn.release ctx !y;
      let trivial =
        Bn.is_zero g
        || Bn.to_int g = Some 1
        || Bn.compare ctx g n = 0
      in
      if trivial then begin
        Bn.release ctx g;
        None
      end
      else begin
        let s = Bn.to_string ctx g in
        Bn.release ctx g;
        Some s
      end)

(* One multiplier attempt: expand the continued fraction of sqrt(k*N),
   collecting smooth relations, eliminating as we go. *)
let attempt st ~n ~k ~fb_bound ~max_iters =
  let ctx = st.ctx in
  let rt = st.rt in
  let kn = Bn.mul_small ctx n k in
  (* Factor base: 2 plus odd primes p with (kN/p) != -1. *)
  let fb =
    primes_upto rt fb_bound
    |> List.filter (fun p ->
           p = 2 || legendre rt (Bn.rem_small ctx kn p) p >= 0)
    |> Array.of_list
  in
  let fb_size = Array.length fb in
  (* The factor base is a long-lived heap object. *)
  let fb_handle = Rt.alloc rt ~size:(8 + (4 * max 1 fb_size)) in
  Rt.touch rt fb_handle fb_size;
  let g = Bn.isqrt ctx kn in
  (* Continued-fraction state:
       P_0 = 0, Q_0 = 1, A_{-1} = 1, A_{-2} = 0,
       a_n = (g + P_n) / Q_n,  P_{n+1} = a_n Q_n - P_n,
       Q_{n+1} = (kN - P_{n+1}^2) / Q_n,
       A_n = (a_n A_{n-1} + A_{n-2}) mod N. *)
  let p_cur = ref (Bn.of_int ctx 0) in
  let q_prev = ref (Bn.copy ctx kn) in
  ignore q_prev;
  let q_cur = ref (Bn.of_int ctx 1) in
  let a_prev = ref (Bn.of_int ctx 0) in
  (* A_{n-2} *)
  let a_cur = ref (Bn.of_int ctx 1) in
  (* A_{n-1} *)
  let pivots = Hashtbl.create 64 in
  let relations = ref [] in
  let n_relations = ref 0 in
  (* large-prime variation: partial relations waiting for a twin, keyed by
     their large prime.  Each entry is a heap object (the stored partial). *)
  let lp_bound = fb_bound * fb_bound in
  let partials : (int, (Bn.t * (int * int) list * bool * Rt.handle)) Hashtbl.t =
    Hashtbl.create 64
  in
  let found = ref None in
  let iter = ref 0 in
  while !found = None && !iter < max_iters do
    incr iter;
    Rt.in_frame rt st.f_cf (fun () ->
        (* a_n = (g + P_n) / Q_n *)
        let gp = Bn.add ctx g !p_cur in
        let an, r = Bn.divmod ctx gp !q_cur in
        Bn.release ctx r;
        Bn.release ctx gp;
        (* P_{n+1} = a_n Q_n - P_n *)
        let aq = Bn.mul ctx an !q_cur in
        let p_next = Bn.sub ctx aq !p_cur in
        Bn.release ctx aq;
        (* Q_{n+1} = (kN - P_{n+1}^2) / Q_n *)
        let p2 = Bn.mul ctx p_next p_next in
        let num = Bn.sub ctx kn p2 in
        Bn.release ctx p2;
        let q_next, r2 = Bn.divmod ctx num !q_cur in
        Bn.release ctx r2;
        Bn.release ctx num;
        (* A_n = (a_n A_{n-1} + A_{n-2}) mod N *)
        let prod = Bn.mul ctx an !a_cur in
        let sum = Bn.add ctx prod !a_prev in
        Bn.release ctx prod;
        let a_next = Bn.rem ctx sum n in
        Bn.release ctx sum;
        Bn.release ctx an;
        (* The relation uses A_{n-1} (the value *before* this step) against
           Q_n of the *next* index: A_{n-1}^2 = (-1)^n Q_n (mod kN).  We test
           Q_{n+1} against A_n, i.e. index n+1, whose sign is odd(n+1). *)
        let sign = !iter land 1 = 1 in
        let add_relation rel =
          relations := rel :: !relations;
          incr n_relations;
          match find_dependency st pivots rel with
          | Some combo -> found := try_congruence st ~n ~fb combo
          | None -> ()
        in
        (if not (Bn.is_zero q_next) then begin
           match trial_divide st fb ~lp_bound q_next with
           | `Smooth exponents ->
               add_relation
                 (make_relation rt ~id:!n_relations ~fb_size
                    ~a:(Bn.copy ctx a_next) ~exponents ~sign ())
           | `Partial (exponents, lp) -> (
               match Hashtbl.find_opt partials lp with
               | Some (a2, exps2, sign2, h2) ->
                   (* two partials sharing lp merge into a full relation:
                      (A1 A2)^2 = +-Q1 Q2 (mod kN), with lp^2 dividing Q1 Q2 *)
                   Hashtbl.remove partials lp;
                   let merged_exps =
                     let tbl = Hashtbl.create 16 in
                     List.iter
                       (fun (i, e) ->
                         Hashtbl.replace tbl i
                           (e + Option.value ~default:0 (Hashtbl.find_opt tbl i)))
                       (exponents @ exps2);
                     Hashtbl.fold (fun i e acc -> (i, e) :: acc) tbl []
                   in
                   let a12 = Bn.mul_mod ctx a_next a2 n in
                   Bn.release ctx a2;
                   Rt.free rt h2;
                   add_relation
                     (make_relation rt ~id:!n_relations ~fb_size ~extra_y:lp
                        ~a:a12 ~exponents:merged_exps
                        ~sign:(sign <> sign2) ())
               | None ->
                   (* store the partial until its twin arrives; the stored
                      record is a medium-lived heap object *)
                   let h = Rt.alloc rt ~size:(32 + (8 * List.length exponents)) in
                   Rt.touch rt h 2;
                   Hashtbl.replace partials lp (Bn.copy ctx a_next, exponents, sign, h))
           | `Rough -> ()
         end);
        (* Slide the recurrence windows, releasing the outgoing values. *)
        Bn.release ctx !p_cur;
        p_cur := p_next;
        let old_q_prev = !q_prev in
        q_prev := !q_cur;
        q_cur := q_next;
        Bn.release ctx old_q_prev;
        Bn.release ctx !a_prev;
        a_prev := !a_cur;
        a_cur := a_next;
        (* Terminate the expansion if Q hit zero (perfect square kN). *)
        if Bn.is_zero !q_cur then iter := max_iters)
  done;
  (* Release everything this attempt allocated. *)
  Hashtbl.iter
    (fun _ (a, _, _, h) ->
      Bn.release ctx a;
      Rt.free rt h)
    partials;
  List.iter
    (fun rel ->
      Bn.release ctx rel.a;
      Rt.free rt rel.vec_handle)
    !relations;
  Bn.release ctx !p_cur;
  Bn.release ctx !q_prev;
  Bn.release ctx !q_cur;
  Bn.release ctx !a_prev;
  Bn.release ctx !a_cur;
  Bn.release ctx g;
  Rt.free rt fb_handle;
  Bn.release ctx kn;
  (!found, !n_relations, !iter)

let factor_string rt ~n ~max_iters =
  let st =
    {
      rt;
      ctx = Bn.make_ctx rt;
      f_main = Rt.func rt "cfrac_main";
      f_cf = Rt.func rt "cf_step";
      f_smooth = Rt.func rt "smooth_test";
      f_elim = Rt.func rt "gauss_elim";
      f_final = Rt.func rt "square_root";
    }
  in
  Rt.in_frame rt st.f_main (fun () ->
      let ctx = st.ctx in
      let nv = Bn.of_string ctx n in
      (* Pick the factor-base bound from the size of N (limb count stands in
         for log N), with a generous floor: like the original program, the
         base is not shrunk for small inputs. *)
      let fb_bound = 100 * Bn.num_limbs nv * Bn.num_limbs nv in
      let fb_bound = max 1200 (min fb_bound 4000) in
      let multipliers = [ 1; 3; 5; 7; 11 ] in
      let result = ref None in
      let total_rels = ref 0 in
      let total_iters = ref 0 in
      List.iter
        (fun k ->
          if !result = None then begin
            let found, rels, iters =
              attempt st ~n:nv ~k ~fb_bound ~max_iters
            in
            total_rels := !total_rels + rels;
            total_iters := !total_iters + iters;
            result := found
          end)
        multipliers;
      Bn.release ctx nv;
      { factor = !result; relations_found = !total_rels; iterations = !total_iters })

(* -- input sets ------------------------------------------------------------ *)

(* Products of two primes, echoing the paper's "20-40 digit numbers that
   were the product of two primes" scaled to simulation budgets.  The two
   primes are of distinct magnitudes: nearly equal primes make the continued
   fraction of sqrt(N) hit the Fermat square ((p+q)/2)^2 - N = ((p-q)/2)^2
   after a handful of steps, which factors N without exercising the
   relation-collection machinery at all. *)
let input_primes = function
  | "tiny" -> [ (83, 97, 400) ]
  | "train" ->
      (* small semiprimes: their continued-fraction expansions finish within
         a few kilobytes of allocation, so in training even the relation
         records (exponent vectors) die short-lived.  On the test inputs the
         expansions run for megabytes and same-sized relation records live
         long: the trained sites mispredict them, giving true-prediction
         error bytes and arena pollution — the paper's CFRAC story (3.65%
         error, arenas degenerating to the general allocator).  The small
         training numbers also cover only the small end of the test run's
         object-size spectrum, so true prediction maps fewer sites than
         self prediction (the paper's 47.3% vs 79.0% drop). *)
      [ (83, 97, 60); (101, 103, 60); (223, 227, 60); (311, 313, 60);
        (401, 409, 60); (503, 509, 60); (601, 607, 60); (701, 709, 60);
        (1009, 1013, 60); (2003, 2011, 60) ]
  | "test" ->
      (* with the large-prime variation, 17-19 digit semiprimes factor in a
         few thousand expansion steps each *)
      [ (15485863, 100000000003, 18000); (32452843, 2147483647, 12000);
        (67867967, 1000000007, 12000); (104395301, 1000000021, 12000);
        (141650939, 1000000033, 12000); (179424673, 2147483629, 12000);
        (982451653, 1000000007, 16000); (1299709, 999999999989, 20000);
        (2038074743, 1000000009, 16000) ]
  | name -> invalid_arg ("Cfrac.run: unknown input " ^ name)

let inputs = [ "tiny"; "train"; "test" ]

let run ?sink ?(scale = 1.0) ~input () =
  let battery = input_primes input in
  let rt = Rt.create ?sink ~ref_ratio:0.22 ~program:"cfrac" ~input () in
  List.iter
    (fun (p, q, iters) ->
      let n = Printf.sprintf "%d" (p * q) in
      let max_iters = max 50 (int_of_float (float_of_int iters *. scale)) in
      let _ : result = factor_string rt ~n ~max_iters in
      ())
    battery;
  Rt.finish rt
