module Rt = Lp_ialloc.Runtime

(* Fill dictionary words into 72-column paragraphs and count frequencies;
   words arrive one (or a few) per input line.  Functions give the
   call-chains extra depth, as AWK programmers' helper functions do. *)
let script =
  {awk|
function emit(s) {
  print s
  paragraphs_out += 1
}

function flush_line() {
  if (len > 0) { emit(line); line = ""; len = 0 }
}

function add_word(w,  n) {
  n = length(w)
  if (len + n + 1 > 72) flush_line()
  if (len == 0) { line = w; len = n }
  else { line = line " " w; len = len + n + 1 }
  count[w] = count[w] + 1
  total_words += 1
  if (length(w) > longest) longest = length(w)
}

BEGIN { line = ""; len = 0 }

{
  for (i = 1; i <= NF; i++) add_word($i)
}

END {
  flush_line()
  frequent = 0
  for (w in count) {
    if (count[w] >= 3) frequent += 1
  }
  printf "%d words, %d frequent, longest %d\n", total_words, frequent, longest
}
|awk}

let run_script rt ~script ~lines =
  let program = Awk_parser.parse script in
  let interp = Awk_interp.create rt program in
  Awk_interp.run interp ~lines

(* Dictionaries: mostly one word per line, occasionally several, like a
   dictionary file with multi-word entries. *)
let dictionary_lines rng ~n_words =
  let words = Corpus.dictionary rng (max 16 (n_words / 20)) in
  Array.init n_words (fun _ ->
      if Prng.float rng < 0.85 then Prng.choose rng words
      else
        String.concat " "
          (List.init (Prng.in_range rng 2 4) (fun _ -> Prng.choose rng words)))

let input_spec = function
  | "tiny" -> ("gawk-tiny", 400)
  | "train" -> ("gawk-train-webster", 30_000)
  | "test" -> ("gawk-test-oed", 60_000)
  | name -> invalid_arg ("Gawk.run: unknown input " ^ name)

let inputs = [ "tiny"; "train"; "test" ]

let run ?sink ?(scale = 1.0) ~input () =
  let seed, n_words = input_spec input in
  let n_words = max 50 (int_of_float (float_of_int n_words *. scale)) in
  let rng = Prng.of_string seed in
  let lines = dictionary_lines rng ~n_words in
  (* The interpreter's explicit per-eval stack references already put the
     heap fraction at the paper's ~47% for GAWK; no implied extra. *)
  let rt = Rt.create ?sink ~ref_ratio:0.0 ~program:"gawk" ~input () in
  let (_ : string) = run_script rt ~script ~lines in
  Rt.finish rt
