(** The workload registry: one entry per program of the paper's Table 1.

    Each program has a {i train} input (used to build predictors) and a
    {i test} input (the one measurements are reported on, mirroring the
    paper's "the performance results presented apply to the largest of the
    input sets").  Traces are memoized per (program, input, scale): every
    experiment pipeline reuses one generation of each trace. *)

type program = {
  name : string;
  description : string;  (** the Table 1 blurb *)
  input_notes : string;  (** how train and test inputs differ, per Table 1/4 *)
  run :
    ?sink:Lp_trace.Trace.Builder.sink ->
    ?scale:float ->
    input:string ->
    unit ->
    Lp_trace.Trace.t;
      (** [sink] streams events out as they happen instead of
          materializing them (see {!Lp_trace.Trace.Builder}). *)
}

val programs : program list
(** In the paper's order: cfrac, espresso, gawk, ghost, perl. *)

val find : string -> program
(** @raise Not_found on an unknown program name. *)

val names : string list

val trace : ?scale:float -> program:string -> input:string -> unit -> Lp_trace.Trace.t
(** Memoized trace access.  [input] is ["train"], ["test"] or ["tiny"]. *)

val clear_cache : unit -> unit

val source :
  ?scale:float -> program:string -> input:string -> unit -> Lp_trace.Source.t
(** A pull-based event source that runs the workload incrementally
    ({!Lp_trace.Source.of_generator}): the generator executes only as
    events are demanded and no event array is ever materialized.
    Single-shot, and deliberately not memoized — call again for a fresh
    stream.
    @raise Not_found on an unknown program name. *)
