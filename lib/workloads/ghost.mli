(** GHOST: the PostScript-interpreter workload.

    Stands in for GhostScript 2.1 run with [NODISPLAY] over large documents
    ("a large reference manual and a masters thesis").  The named inputs
    generate synthetic PostScript documents — a prolog of procedure
    definitions followed by pages of text runs, rules, boxes and curves —
    and interpret them through the mini-PostScript VM, rasterizing into
    6-kilobyte band buffers.

    The two inputs have different page mixes (the manual is table- and
    rule-heavy, the thesis is prose-heavy), so true prediction degrades
    slightly against self prediction, as the paper observed for GHOST. *)

type summary = { pages : int; bands : int; output_chars : int }

val interpret : Lp_ialloc.Runtime.t -> source:string -> summary
(** Interpret PostScript source on the given runtime.
    @raise Ps_object.Ps_error on PostScript errors. *)

val document : style:[ `Manual | `Thesis ] -> pages:int -> seed:string -> string
(** Generate a synthetic document. *)

val inputs : string list

val run :
  ?sink:Lp_trace.Trace.Builder.sink ->
  ?scale:float ->
  input:string ->
  unit ->
  Lp_trace.Trace.t
(** @raise Invalid_argument on an unknown input name. *)
