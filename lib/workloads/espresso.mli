(** ESPRESSO: two-level logic minimization.

    This workload stands in for the paper's ESPRESSO 2.3 ("a PLA logic
    optimization program").  It implements the classic Espresso loop over
    the {!Cube} algebra: compute the off-set by complementation, then
    iterate EXPAND (greedily raise literals of each cube against the
    off-set), IRREDUNDANT (drop cubes covered by the rest of the cover),
    and REDUCE (shrink cubes to the smallest form that preserves the
    cover), until the cover cost stops improving.

    Allocation profile: the recursive cofactor/tautology/complement
    procedures create great numbers of short-lived cube objects, while the
    on-set and off-set covers live for a whole minimization — the mix of
    many sites with varied lifetimes that gives ESPRESSO the largest site
    count in the paper (Table 4: 2854 sites). *)

type stats = {
  initial_cubes : int;
  final_cubes : int;
  initial_literals : int;
  final_literals : int;
  passes : int;
  final_cover : string list;
      (** the minimized cover in ['0' '1' '-'] notation, for verification *)
}

val minimize : Lp_ialloc.Runtime.t -> n_vars:int -> on_set:string list -> stats
(** Minimize the single-output function whose on-set cubes are given in
    ['0' '1' '-'] positional notation.  Verifies nothing (tests do); returns
    cost statistics. *)

val inputs : string list

val run :
  ?sink:Lp_trace.Trace.Builder.sink ->
  ?scale:float ->
  input:string ->
  unit ->
  Lp_trace.Trace.t
(** Run a named input set: a deterministic battery of synthetic PLAs
    ("examples provided with the release code" in the paper).
    @raise Invalid_argument on an unknown input name. *)
