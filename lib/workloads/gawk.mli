(** GAWK: the AWK-interpreter workload.

    The paper's GAWK input was "an AWK script to format the words of
    several dictionaries into filled paragraphs"; crucially, the two GAWK
    input sets ran the {i same} script on different data, which is why GAWK
    shows essentially identical self and true prediction (Table 4).  We
    mirror that: both named inputs run one fixed script (paragraph filling
    plus word-frequency accounting) over dictionaries of different sizes
    and contents. *)

val script : string
(** The mini-AWK source both inputs run. *)

val inputs : string list

val run :
  ?sink:Lp_trace.Trace.Builder.sink ->
  ?scale:float ->
  input:string ->
  unit ->
  Lp_trace.Trace.t
(** @raise Invalid_argument on an unknown input name. *)

val run_script :
  Lp_ialloc.Runtime.t -> script:string -> lines:string array -> string
(** Parse and execute an arbitrary script (used by tests and examples);
    returns its output. *)
