(** PERL: the report-extraction workload.

    Stands in for Perl 4.10.  The paper's two PERL inputs were {i two
    distinct Perl programs} on distinct data ("sorted the contents of a
    file and formatted the words in a dictionary into filled paragraphs"),
    which is why PERL shows the largest gap between self prediction
    (91.4%) and true prediction (20.4%) in Table 4.  We mirror that: the
    training input runs a sort-and-count script, the test input runs a
    paragraph-formatting script with regex extraction — different code,
    different allocation sites. *)

val sort_script : string
val format_script : string

val inputs : string list

val run :
  ?sink:Lp_trace.Trace.Builder.sink ->
  ?scale:float ->
  input:string ->
  unit ->
  Lp_trace.Trace.t
(** @raise Invalid_argument on an unknown input name. *)

val run_script :
  Lp_ialloc.Runtime.t -> script:string -> stdin:string array -> string
(** Parse and execute an arbitrary script (tests, examples). *)
