(* PINT: a dispatch-table AST interpreter in the Plang / language-p mould.

   The interpreter walks a tree of opcode-tagged nodes through a flat
   handler table indexed by opcode (the Plang [instr_dispatch] idiom), and
   its value model is the dynamic-language trio real interpreters spend
   their heap on: scope frames allocated per call and freed on return,
   auto-vivified reference chains hanging off global roots (the
   language-p [Value::Undef -> Reference -> fresh value] idiom), and
   growable vectors / string buffers whose backing stores double through
   [Runtime.realloc] — the realloc-bearing traffic the original 1993
   workload set cannot express. *)

module Rt = Lp_ialloc.Runtime

(* -- opcodes ------------------------------------------------------------------- *)

let op_seq = 0
let op_int = 1
let op_local = 2
let op_set_local = 3
let op_add = 4
let op_mul = 5
let op_mod = 6
let op_vec_new = 7
let op_vec_push = 8
let op_vec_get = 9
let op_vec_trim = 10
let op_str_new = 11
let op_str_append = 12
let op_vivify = 13
let op_call = 14
let op_for = 15
let op_if_lt = 16
let n_ops = 17

let op_name = function
  | 0 -> "op_seq"
  | 1 -> "op_int"
  | 2 -> "op_local"
  | 3 -> "op_set_local"
  | 4 -> "op_add"
  | 5 -> "op_mul"
  | 6 -> "op_mod"
  | 7 -> "op_vec_new"
  | 8 -> "op_vec_push"
  | 9 -> "op_vec_get"
  | 10 -> "op_vec_trim"
  | 11 -> "op_str_new"
  | 12 -> "op_str_append"
  | 13 -> "op_vivify"
  | 14 -> "op_call"
  | 15 -> "op_for"
  | 16 -> "op_if_lt"
  | _ -> invalid_arg "Pint.op_name"

type node = { op : int; kids : node array; ival : int }

let mk ?(kids = [||]) ?(ival = 0) op = { op; kids; ival }

(* -- runtime values ------------------------------------------------------------ *)

(* Simulated layouts: a vector backing store is a 16-byte header plus 8
   bytes per capacity slot; string buffers are headers plus their byte
   capacity; reference cells and boxed scalars are 16 bytes. *)

type value =
  | Undef
  | Int of int
  | Vec of vec
  | Str of strbuf
  | Ref of ref_cell

and vec = {
  mutable vdata : value array;
  mutable vlen : int;
  mutable vcap : int;
  vh : Rt.handle;  (* the backing store; realloc keeps the handle *)
}

and strbuf = { mutable scap : int; mutable slen : int; sh : Rt.handle }
and ref_cell = { mutable target : value; rh : Rt.handle }

type frame = {
  slots : value array;
  mutable owned : Rt.handle list;  (* freed when the frame pops *)
}

type fn = { fid : Lp_callchain.Func.id; n_params : int; n_slots : int; body : node }

type state = {
  rt : Rt.t;
  fns : fn array;  (* [op_call]'s ival indexes this *)
  op_fid : Lp_callchain.Func.id array;
  globals : value array;  (* vivification roots *)
  mutable frame : frame;
}

let vec_size cap = 16 + (8 * cap)
let str_size cap = 16 + cap

let own st h = st.frame.owned <- h :: st.frame.owned

let vec_new ?(local = true) st =
  let cap = 4 in
  let vh = Rt.alloc ~tag:"vec" st.rt ~size:(vec_size cap) in
  if local then own st vh;
  { vdata = Array.make cap Undef; vlen = 0; vcap = cap; vh }

let vec_push st v x =
  if v.vlen = v.vcap then begin
    let cap' = 2 * v.vcap in
    ignore (Rt.realloc ~tag:"vec" st.rt v.vh ~new_size:(vec_size cap') : int);
    let bigger = Array.make cap' Undef in
    Array.blit v.vdata 0 bigger 0 v.vlen;
    v.vdata <- bigger;
    v.vcap <- cap'
  end;
  v.vdata.(v.vlen) <- x;
  v.vlen <- v.vlen + 1;
  Rt.touch st.rt v.vh 1

(* shrink-to-fit: the realloc direction growth never exercises *)
let vec_trim st v =
  let cap = max 1 v.vlen in
  if cap < v.vcap then begin
    ignore (Rt.realloc ~tag:"vec" st.rt v.vh ~new_size:(vec_size cap) : int);
    v.vcap <- cap;
    v.vdata <- Array.sub v.vdata 0 cap
  end

let str_new st =
  let sh = Rt.alloc ~tag:"str" st.rt ~size:(str_size 16) in
  own st sh;
  { scap = 16; slen = 0; sh }

let str_append st s n =
  let need = s.slen + n in
  if need > s.scap then begin
    (* strings grow in 32-byte steps, not doubling: small-class resizes
       that a segregated allocator often absorbs in place *)
    let cap = ref s.scap in
    while !cap < need do
      cap := !cap + 32
    done;
    ignore (Rt.realloc ~tag:"str" st.rt s.sh ~new_size:(str_size !cap) : int);
    s.scap <- !cap
  end;
  s.slen <- need;
  Rt.touch st.rt s.sh 1

let to_int = function
  | Undef -> 0
  | Int n -> n
  | Vec v -> v.vlen
  | Str s -> s.slen
  | Ref _ -> 1

(* -- the dispatch table -------------------------------------------------------- *)

let unimplemented : state -> node -> value =
 fun _ _ -> failwith "Pint: unimplemented opcode"

let dispatch : (state -> node -> value) array = Array.make n_ops unimplemented

(* Every node evaluation enters a per-opcode frame, so an allocation's
   call-chain spells out the dynamic path through the interpreter — the
   deep-chain labelling the predictor experiments feed on. *)
let rec eval st (n : node) =
  Rt.enter st.rt st.op_fid.(n.op);
  Rt.instructions st.rt 2;
  let v = (Array.unsafe_get dispatch n.op) st n in
  Rt.leave st.rt;
  v

and eval_seq st n =
  let r = ref Undef in
  Array.iter (fun k -> r := eval st k) n.kids;
  !r

and eval_int _ n = Int n.ival
and eval_local st n = st.frame.slots.(n.ival)

and eval_set_local st n =
  let v = eval st n.kids.(0) in
  st.frame.slots.(n.ival) <- v;
  v

and eval_add st n = Int (to_int (eval st n.kids.(0)) + to_int (eval st n.kids.(1)))
and eval_mul st n = Int (to_int (eval st n.kids.(0)) * to_int (eval st n.kids.(1)))

and eval_mod st n =
  let a = to_int (eval st n.kids.(0)) in
  let b = to_int (eval st n.kids.(1)) in
  Int (if b = 0 then 0 else a mod b)

and eval_vec_new st _ = Vec (vec_new st)

and eval_vec_push st n =
  let v = eval st n.kids.(0) in
  let x = eval st n.kids.(1) in
  (match v with Vec v -> vec_push st v x | _ -> ());
  Int (to_int v)

and eval_vec_get st n =
  match eval st n.kids.(0) with
  | Vec v when v.vlen > 0 ->
      let i = to_int (eval st n.kids.(1)) mod v.vlen in
      Rt.touch st.rt v.vh 1;
      Int (to_int v.vdata.(abs i))
  | _ -> Int 0

and eval_vec_trim st n =
  let v = eval st n.kids.(0) in
  (match v with Vec v -> vec_trim st v | _ -> ());
  Int (to_int v)

and eval_str_new st _ = Str (str_new st)

and eval_str_append st n =
  let s = eval st n.kids.(0) in
  let k = to_int (eval st n.kids.(1)) in
  (match s with Str s -> str_append st s (1 + abs k) | _ -> ());
  Int (to_int s)

(* language-p style auto-vivification: walking an undefined global path
   materializes a chain of reference cells ending in storage, all
   long-lived.  The chain depth is a stable function of the root, so
   later visits re-walk (touch) the same cells and push into the same
   vector — whose growth reallocs an object born arbitrarily far back in
   the trace. *)
and eval_vivify st n =
  let root = abs (to_int (eval st n.kids.(0))) mod Array.length st.globals in
  let x = to_int (eval st n.kids.(1)) in
  let depth = 1 + (root mod 4) in
  let rec go get set d =
    if d = 0 then (
      match get () with
      | Vec v ->
          vec_push st v (Int x);
          Int v.vlen
      | Undef ->
          let v = vec_new ~local:false st in
          set (Vec v);
          vec_push st v (Int x);
          Int v.vlen
      | other -> Int (to_int other))
    else
      match get () with
      | Ref r ->
          Rt.touch st.rt r.rh 1;
          go (fun () -> r.target) (fun v -> r.target <- v) (d - 1)
      | Undef ->
          let rh = Rt.alloc ~tag:"ref" st.rt ~size:16 in
          let r = { target = Undef; rh } in
          set (Ref r);
          go (fun () -> r.target) (fun v -> r.target <- v) (d - 1)
      | other -> Int (to_int other)
  in
  go
    (fun () -> st.globals.(root))
    (fun v -> st.globals.(root) <- v)
    depth

and eval_call st n =
  let f = st.fns.(n.ival) in
  let n_args = Array.length n.kids in
  let frame = { slots = Array.make f.n_slots Undef; owned = [] } in
  for i = 0 to min n_args f.n_params - 1 do
    frame.slots.(i) <- eval st n.kids.(i)
  done;
  let fh = Rt.alloc ~tag:"frame" st.rt ~size:(32 + (8 * f.n_slots)) in
  frame.owned <- [ fh ];
  let saved = st.frame in
  st.frame <- frame;
  let result =
    match Rt.in_frame st.rt f.fid (fun () -> eval st f.body) with
    | v ->
        st.frame <- saved;
        v
    | exception e ->
        st.frame <- saved;
        raise e
  in
  List.iter (Rt.free st.rt) frame.owned;
  result

and eval_for st n =
  let count = to_int (eval st n.kids.(0)) in
  let acc = ref 0 in
  for i = 0 to count - 1 do
    st.frame.slots.(n.ival) <- Int i;
    acc := !acc + to_int (eval st n.kids.(1))
  done;
  Int !acc

and eval_if_lt st n =
  if to_int (eval st n.kids.(0)) < to_int (eval st n.kids.(1)) then
    eval st n.kids.(2)
  else eval st n.kids.(3)

let () =
  dispatch.(op_seq) <- eval_seq;
  dispatch.(op_int) <- eval_int;
  dispatch.(op_local) <- eval_local;
  dispatch.(op_set_local) <- eval_set_local;
  dispatch.(op_add) <- eval_add;
  dispatch.(op_mul) <- eval_mul;
  dispatch.(op_mod) <- eval_mod;
  dispatch.(op_vec_new) <- eval_vec_new;
  dispatch.(op_vec_push) <- eval_vec_push;
  dispatch.(op_vec_get) <- eval_vec_get;
  dispatch.(op_vec_trim) <- eval_vec_trim;
  dispatch.(op_str_new) <- eval_str_new;
  dispatch.(op_str_append) <- eval_str_append;
  dispatch.(op_vivify) <- eval_vivify;
  dispatch.(op_call) <- eval_call;
  dispatch.(op_for) <- eval_for;
  dispatch.(op_if_lt) <- eval_if_lt

(* -- program construction ------------------------------------------------------ *)

(* The two programs share the interpreter but stress different heap
   behaviour, like the paper's two PERL scripts: [`Grow] is vector-heavy
   (fill builds and trims vectors), [`Weave] is string- and
   vivification-heavy with deeper recursion. *)

type params = {
  variant : [ `Grow | `Weave ];
  iterations : int;
  pushes : int;  (* base vector pushes per fill call *)
  appends : int;  (* base string appends per fill call *)
}

(* fn 0 = fill(x): slots 0=x 1=vec 2=str 3=i
   fn 1 = weave(x, d): slots 0=x 1=d — recurses d times, vivifies, fills
   fn 2 = main(n): slots 0=n 1=i *)
let build_fns rt p =
  let int i = mk op_int ~ival:i in
  let local i = mk op_local ~ival:i in
  let setl i e = mk op_set_local ~ival:i ~kids:[| e |] in
  let add a b = mk op_add ~kids:[| a; b |] in
  let mul a b = mk op_mul ~kids:[| a; b |] in
  let modulo a b = mk op_mod ~kids:[| a; b |] in
  let seq ks = mk op_seq ~kids:(Array.of_list ks) in
  let for_ slot count body = mk op_for ~ival:slot ~kids:[| count; body |] in
  let call f args = mk op_call ~ival:f ~kids:(Array.of_list args) in
  let if_lt a b t e = mk op_if_lt ~kids:[| a; b; t; e |] in
  let fill_body =
    seq
      [
        setl 1 (mk op_vec_new);
        setl 2 (mk op_str_new);
        for_ 3
          (add (modulo (local 0) (int 5)) (int p.pushes))
          (seq
             [
               mk op_vec_push ~kids:[| local 1; mul (local 3) (local 0) |];
               mk op_str_append
                 ~kids:[| local 2; modulo (local 3) (int p.appends) |];
             ]);
        mk op_vec_trim ~kids:[| local 1 |];
        add
          (mk op_vec_get ~kids:[| local 1; local 0 |])
          (mk op_str_append ~kids:[| local 2; int 3 |]);
      ]
  in
  let weave_body =
    if_lt (int 0) (local 1)
      (seq
         [
           mk op_vivify ~kids:[| local 0; local 1 |];
           call 0 [ local 0 ];
           call 1 [ add (local 0) (int 1); add (local 1) (int (-1)) ];
         ])
      (call 0 [ local 0 ])
  in
  let main_body =
    for_ 1 (local 0)
      (match p.variant with
      | `Grow ->
          seq
            [
              call 0 [ local 1 ];
              call 1 [ local 1; add (modulo (local 1) (int 3)) (int 1) ];
            ]
      | `Weave ->
          seq
            [
              mk op_vivify ~kids:[| local 1; mul (local 1) (int 7) |];
              call 1 [ local 1; add (modulo (local 1) (int 5)) (int 2) ];
            ])
  in
  [|
    { fid = Rt.func rt "fill"; n_params = 1; n_slots = 4; body = fill_body };
    { fid = Rt.func rt "weave"; n_params = 2; n_slots = 2; body = weave_body };
    { fid = Rt.func rt "main"; n_params = 1; n_slots = 2; body = main_body };
  |]

let interpret rt p =
  let st =
    {
      rt;
      fns = build_fns rt p;
      op_fid = Array.init n_ops (fun op -> Rt.func rt (op_name op));
      globals = Array.make 8 Undef;
      frame = { slots = [||]; owned = [] };
    }
  in
  to_int (eval st (mk op_call ~ival:2 ~kids:[| mk op_int ~ival:p.iterations |]))

let input_spec = function
  | "tiny" -> { variant = `Grow; iterations = 30; pushes = 6; appends = 7 }
  | "train" -> { variant = `Grow; iterations = 900; pushes = 10; appends = 7 }
  | "test" -> { variant = `Weave; iterations = 700; pushes = 4; appends = 13 }
  | name -> invalid_arg ("Pint.run: unknown input " ^ name)

let inputs = [ "tiny"; "train"; "test" ]

let run ?sink ?(scale = 1.0) ~input () =
  let p = input_spec input in
  let iterations =
    max 12 (int_of_float (float_of_int p.iterations *. scale))
  in
  let rt = Rt.create ?sink ~ref_ratio:0.1 ~program:"pint" ~input () in
  let (_ : int) = interpret rt { p with iterations } in
  Rt.finish rt
