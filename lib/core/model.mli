(** Portable trained-predictor models on disk.

    The paper compiles the trained "database of allocation sites" into the
    allocation system (§5.1); this module is that artifact as a file: the
    training configuration, the training run's final clock, and one entry
    per portable site key carrying the key's training statistics and
    whether the predictor accepted it.  Keeping the observed statistics —
    not just the accepted keys — makes the model self-describing enough
    for the static validator ([lp_analysis]'s [Validate]) to check it
    without the training trace at hand.

    Line format (names escaped as in {!Lp_trace.Textio}):

    {v
    lpmodel 1
    program <name>
    config <threshold> <rounding> <policy>
    clock <total-bytes-allocated-in-training>
    site <predicted 0|1> <count> <short-count> <max-lifetime> <size> <func> ...
    end
    v} *)

type entry = {
  key : Portable.t;
  predicted : bool;  (** accepted into the predictor *)
  count : int;  (** training objects observed under this key *)
  short_count : int;  (** of which short-lived *)
  max_lifetime : int;  (** longest observed lifetime, in bytes *)
}

type t = {
  program : string;  (** training workload name *)
  threshold : int;  (** short-lived threshold, bytes *)
  rounding : int;  (** size rounding of the portable keys *)
  policy : string;  (** site policy, as {!Lp_callchain.Site.policy_to_string} *)
  clock : int;  (** training trace's total bytes allocated *)
  entries : entry list;
}

val magic : string
(** ["lpmodel"], the first token of every model file. *)

val looks_like_model : string -> bool
(** True iff the string (file contents) starts with {!magic} — how
    [lpalloc lint] tells a model from a trace. *)

val of_training :
  config:Config.t ->
  trace:Lp_trace.Trace.t ->
  Train.site_table ->
  Predictor.t ->
  t
(** Aggregate the training table by portable key (several raw sites can
    round onto one key) and record, per key, the combined statistics and
    the predictor's verdict.  [trace] supplies the program name, the
    function-name table and the final clock. *)

val of_training_parts :
  config:Config.t ->
  program:string ->
  funcs:Lp_callchain.Func.table ->
  clock:int ->
  Train.site_table ->
  Predictor.t ->
  t
(** As {!of_training}, but with the trace-derived inputs passed
    explicitly — the form streaming training uses ([clock] is
    {!Train.streamed}'s [end_clock], [funcs] the source's table). *)

val to_string : t -> string
val of_string : ?name:string -> string -> t
(** @raise Failure on malformed input, with [name] and the line number. *)

val save : string -> t -> unit
val load : string -> t
(** @raise Failure on malformed input, [Sys_error] if unreadable. *)

val predictor : config:Config.t -> t -> Predictor.t
(** Rebuild a usable predictor from the model's accepted keys.  The
    [config]'s policy and rounding should match the model's; the model's
    recorded threshold/rounding are authoritative for validation. *)

(** {1 Introspection}

    The reverse mapping key → entry, for analyses that look trace sites
    up in a model (the audit's coverage and collision passes). *)

type index
(** A hash index over the model's entries by portable key. *)

val index : t -> index
(** Build the index once; duplicate keys (possible only in hand-edited
    files) keep their first entry, matching training's
    first-appearance order. *)

val find_key : index -> Portable.t -> entry option

val site_policy : t -> Lp_callchain.Site.policy option
(** The model's recorded site policy, decoded
    ({!Lp_callchain.Site.policy_of_string}); [None] when the file names
    an unknown policy. *)

val n_predicted : t -> int
(** Entries accepted into the predictor. *)
