type entry = {
  key : Portable.t;
  predicted : bool;
  count : int;
  short_count : int;
  max_lifetime : int;
}

type t = {
  program : string;
  threshold : int;
  rounding : int;
  policy : string;
  clock : int;
  entries : entry list;
}

let magic = "lpmodel"
let version = 1

let looks_like_model s =
  String.length s >= String.length magic
  && String.equal (String.sub s 0 (String.length magic)) magic

(* -- construction from a training run ------------------------------------------- *)

type acc = {
  mutable a_count : int;
  mutable a_short : int;
  mutable a_max : int;
}

let of_training_parts ~(config : Config.t) ~program ~funcs ~clock table
    (predictor : Predictor.t) =
  let by_key : acc Portable.Table.t = Portable.Table.create 256 in
  let order = ref [] in
  Train.fold table () (fun site (stats : Site_stats.t) () ->
      let key = Predictor.portable_of_site predictor funcs site in
      let acc =
        match Portable.Table.find_opt by_key key with
        | Some a -> a
        | None ->
            let a = { a_count = 0; a_short = 0; a_max = 0 } in
            Portable.Table.add by_key key a;
            order := key :: !order;
            a
      in
      acc.a_count <- acc.a_count + stats.count;
      acc.a_short <- acc.a_short + stats.short_count;
      acc.a_max <- max acc.a_max stats.max_lifetime);
  let entries =
    List.rev_map
      (fun key ->
        let a = Portable.Table.find by_key key in
        {
          key;
          predicted = Predictor.predicts_key predictor key;
          count = a.a_count;
          short_count = a.a_short;
          max_lifetime = a.a_max;
        })
      !order
  in
  {
    program;
    threshold = config.short_lived_threshold;
    rounding = config.size_rounding;
    policy = Lp_callchain.Site.policy_to_string config.policy;
    clock;
    entries;
  }

let of_training ~config ~(trace : Lp_trace.Trace.t) table predictor =
  of_training_parts ~config ~program:trace.program ~funcs:trace.funcs
    ~clock:(Lp_trace.Trace.total_bytes trace)
    table predictor

(* -- serialization --------------------------------------------------------------- *)

let to_string t =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Printf.sprintf "%s %d\n" magic version);
  Buffer.add_string b
    (Printf.sprintf "program %s\n" (Lp_trace.Textio.escape_name t.program));
  Buffer.add_string b
    (Printf.sprintf "config %d %d %s\n" t.threshold t.rounding t.policy);
  Buffer.add_string b (Printf.sprintf "clock %d\n" t.clock);
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "site %d %d %d %d %d" (Bool.to_int e.predicted) e.count
           e.short_count e.max_lifetime e.key.Portable.size);
      List.iter
        (fun f ->
          Buffer.add_char b ' ';
          Buffer.add_string b (Lp_trace.Textio.escape_name f))
        e.key.Portable.chain;
      Buffer.add_char b '\n')
    t.entries;
  Buffer.add_string b "end\n";
  Buffer.contents b

let save path t = Out_channel.with_open_bin path (fun oc -> output_string oc (to_string t))

let of_string ?(name = "<model>") s =
  let fail lineno msg =
    failwith (Printf.sprintf "Model.of_string: %s:%d: %s" name lineno msg)
  in
  let int lineno ~field v =
    match int_of_string_opt v with
    | Some n -> n
    | None ->
        fail lineno (Printf.sprintf "field %s: %S is not an integer" field v)
  in
  let program = ref "?" in
  let threshold = ref 0 and rounding = ref 1 and policy = ref "?" in
  let clock = ref 0 in
  let entries = ref [] in
  let seen_magic = ref false and finished = ref false in
  let parse lineno line =
    match String.split_on_char ' ' (String.trim line) with
    | [ "" ] -> ()
    | m :: v :: _ when (not !seen_magic) && m = magic ->
        if int lineno ~field:"version" v <> version then
          fail lineno (Printf.sprintf "unsupported model version %s" v);
        seen_magic := true
    | _ when not !seen_magic -> fail lineno "not a model file (missing lpmodel header)"
    | [ "program"; p ] -> program := Lp_trace.Textio.unescape p
    | [ "config"; th; r; p ] ->
        threshold := int lineno ~field:"threshold" th;
        rounding := int lineno ~field:"rounding" r;
        policy := p
    | [ "clock"; c ] -> clock := int lineno ~field:"clock" c
    | "site" :: p :: c :: sc :: ml :: size :: funcs ->
        let predicted =
          match p with
          | "0" -> false
          | "1" -> true
          | _ -> fail lineno (Printf.sprintf "field predicted: %S is not 0/1" p)
        in
        entries :=
          {
            key =
              {
                Portable.chain = List.map Lp_trace.Textio.unescape funcs;
                size = int lineno ~field:"size" size;
              };
            predicted;
            count = int lineno ~field:"count" c;
            short_count = int lineno ~field:"short-count" sc;
            max_lifetime = int lineno ~field:"max-lifetime" ml;
          }
          :: !entries
    | [ "end" ] -> finished := true
    | _ -> fail lineno (Printf.sprintf "unrecognised line %S" line)
  in
  List.iteri
    (fun i line -> if not !finished then parse (i + 1) line)
    (String.split_on_char '\n' s);
  if not !finished then fail 0 "missing 'end' line";
  {
    program = !program;
    threshold = !threshold;
    rounding = !rounding;
    policy = !policy;
    clock = !clock;
    entries = List.rev !entries;
  }

let load path =
  of_string ~name:path (In_channel.with_open_bin path In_channel.input_all)

let predictor ~config t =
  Predictor.of_keys ~config
    (List.filter_map (fun e -> if e.predicted then Some e.key else None) t.entries)

(* -- introspection ---------------------------------------------------------------- *)

type index = entry Portable.Table.t

let index t =
  let ix : index = Portable.Table.create (max 16 (List.length t.entries)) in
  (* duplicate keys cannot arise from [of_training_parts], but a hand-
     edited model could carry them; keep the first entry, like the
     first-appearance order the trainer preserves *)
  List.iter
    (fun e ->
      if not (Portable.Table.mem ix e.key) then Portable.Table.add ix e.key e)
    t.entries;
  ix

let find_key ix key = Portable.Table.find_opt ix key

let site_policy t = Lp_callchain.Site.policy_of_string t.policy

let n_predicted t =
  List.length (List.filter (fun e -> e.predicted) t.entries)
