(* Allocator design-space search (`lpalloc tune`).

   The paper fixes its allocator parameters by hand — length-4 chains, one
   32 KB short-lived threshold, 16 x 4 KB arenas — and evaluates those few
   points.  Following the simulation-driven search of Risco-Martín et al.
   ("Simulation of High-Performance Memory Allocators"), this module
   searches the parameter space instead: a deterministic seeded grid plus
   an evolutionary refinement loop, every candidate replayed through the
   decode-once/replay-many engine ({!Lp_allocsim.Driver.prepare} once,
   {!Lp_allocsim.Driver.run_prepared} per candidate, in parallel on the
   {!Parallel} pool with pooled scratch and predictor memos).

   Everything is deterministic for a fixed seed: the PRNG is SplitMix64,
   {!Parallel.map} preserves order, and no wall-clock or domain count
   leaks into the results — the Pareto front is byte-identical at 1 and
   N domains (locked by the golden determinism test). *)

module Driver = Lp_allocsim.Driver
module Registry = Lp_allocsim.Registry
module Metrics = Lp_allocsim.Metrics
module Cost_model = Lp_allocsim.Cost_model
module Trace = Lp_trace.Trace
module Json = Lp_report.Json
module Prng = Lp_workloads.Prng

(* -- candidates --------------------------------------------------------------------- *)

type backend_params =
  | Freelist of { best : bool; sbrk : int }
  | Bsd
  | Segfit of { slab : int array }
  | Arena of { n : int; chunk : int; fallback : string }

type candidate = {
  backend : backend_params;
  depth : int;  (* 0 = complete cycle-eliminated chain; 1-8 = last-N callers *)
  threshold : int;  (* short-lived threshold, bytes *)
}

let default_sbrk = 8192
let default_threshold = Config.default.Config.short_lived_threshold
let default_arena = Arena { n = 16; chunk = 4096; fallback = "first-fit" }

let uses_prediction c = match c.backend with Arena _ -> true | _ -> false

(* prediction knobs are meaningless for non-predicting backends; pin them
   so the dedup key collapses `first-fit at threshold 8 KB` onto plain
   `first-fit` *)
let normalize c =
  if uses_prediction c then c
  else { c with depth = 0; threshold = default_threshold }

let spec_string c =
  match c.backend with
  | Freelist { best; sbrk } ->
      let name = if best then "best-fit" else "first-fit" in
      if sbrk = default_sbrk then name else Printf.sprintf "%s:sbrk=%d" name sbrk
  | Bsd -> "bsd"
  | Segfit { slab } ->
      if slab = Lp_allocsim.Segfit.default_classes then "segfit"
      else
        Printf.sprintf "segfit:slab=%s"
          (String.concat "+" (List.map string_of_int (Array.to_list slab)))
  | Arena { n; chunk; fallback } ->
      let params =
        (if n = 16 then [] else [ Printf.sprintf "n=%d" n ])
        @ (if chunk = 4096 then [] else [ Printf.sprintf "chunk=%d" chunk ])
        @
        if fallback = "first-fit" then []
        else [ Printf.sprintf "fallback=%s" fallback ]
      in
      String.concat ":" ("arena" :: params)

let key c = Printf.sprintf "%s|d%d|t%d" (spec_string c) c.depth c.threshold

let chain_string c = if c.depth = 0 then "full" else string_of_int c.depth

let label c =
  if uses_prediction c then
    Printf.sprintf "%s chain=%s thr=%d" (spec_string c) (chain_string c)
      c.threshold
  else spec_string c

let policy_of_depth d =
  if d = 0 then Lp_callchain.Site.Complete_chain
  else Lp_callchain.Site.Last_callers d

let config_for ~threshold ~depth =
  {
    Config.default with
    Config.short_lived_threshold = threshold;
    policy = policy_of_depth depth;
  }

(* -- evaluation --------------------------------------------------------------------- *)

type result = {
  candidate : candidate;
  metrics : Metrics.t;
  instructions : int;  (* total simulated alloc+free instructions *)
  max_heap : int;
}

(* [Metrics.t] stores instructions as per-op floats; the totals they came
   from are recovered exactly (products stay far below 2^52, where
   round-to-nearest undoes the division's rounding). *)
let instructions_of (m : Metrics.t) =
  int_of_float (Float.round (m.Metrics.instr_per_alloc *. float_of_int m.Metrics.allocs))
  + int_of_float (Float.round (m.Metrics.instr_per_free *. float_of_int m.Metrics.frees))

type ctx = {
  train : Trace.t;
  test : Trace.t;
  prepared : Driver.prepared;
  (* (threshold, depth) -> trained predictor; filled before each parallel
     batch, then only read (concurrently, safely) inside it *)
  predictors : (int * int, Predictor.t) Hashtbl.t;
}

let ensure_predictors ctx cands =
  let wanted =
    List.filter_map
      (fun c -> if uses_prediction c then Some (c.threshold, c.depth) else None)
      cands
    |> List.sort_uniq compare
  in
  let missing =
    List.filter (fun k -> not (Hashtbl.mem ctx.predictors k)) wanted
  in
  (* training passes are independent; build the missing predictors on the
     domain pool (order-preserving, so insertion order is deterministic) *)
  let built =
    Parallel.map
      (fun (threshold, depth) ->
        let config = config_for ~threshold ~depth in
        let table = Train.collect ~config ctx.train in
        Predictor.build ~config ~funcs:ctx.train.Trace.funcs table)
      missing
  in
  List.iter2 (fun k p -> Hashtbl.replace ctx.predictors k p) missing built

let eval_with_cost ctx c ~predict_cost =
  let backend =
    match Registry.backend_of_spec (spec_string c) with
    | Ok b -> b
    | Error msg -> failwith ("Tune: " ^ msg)
  in
  let metrics =
    if uses_prediction c then begin
      let predictor = Hashtbl.find ctx.predictors (c.threshold, c.depth) in
      let predicted = Predictor.for_trace_pooled predictor ctx.test in
      Driver.run_prepared
        ~predictor:
          {
            Driver.predicted;
            predict_cost;
            short_threshold = c.threshold;
            on_outcome = None;
          }
        ctx.prepared backend
    end
    else Driver.run_prepared ctx.prepared backend
  in
  {
    candidate = c;
    metrics;
    instructions = instructions_of metrics;
    max_heap = metrics.Metrics.max_heap;
  }

(* the search prices prediction at the paper's length-4 figure; the CCE
   pricing appears among the fixed baseline points instead *)
let eval ctx c = eval_with_cost ctx c ~predict_cost:Cost_model.predict_len4

let eval_batch ctx cands =
  ensure_predictors ctx cands;
  Parallel.map (eval ctx) cands

(* -- Pareto front ------------------------------------------------------------------- *)

let cmp_result a b =
  match compare a.instructions b.instructions with
  | 0 -> (
      match compare a.max_heap b.max_heap with
      | 0 -> compare (key a.candidate) (key b.candidate)
      | c -> c)
  | c -> c

(* minimize both (instructions, max_heap): sort by instructions and keep
   the strictly-improving heap frontier; ties broken by candidate key so
   the front is unique for a given result set *)
let pareto_front results =
  let sorted = List.sort cmp_result results in
  let _, front =
    List.fold_left
      (fun (best_heap, acc) r ->
        if r.max_heap < best_heap then (r.max_heap, r :: acc) else (best_heap, acc))
      (max_int, []) sorted
  in
  List.rev front

(* -- the deterministic seed grid ---------------------------------------------------- *)

let grid_candidates () =
  let plain backend = normalize { backend; depth = 0; threshold = default_threshold } in
  let base =
    [
      plain (Freelist { best = false; sbrk = default_sbrk });
      plain (Freelist { best = true; sbrk = default_sbrk });
      plain Bsd;
      plain (Segfit { slab = Lp_allocsim.Segfit.default_classes });
      plain (Segfit { slab = [| 16; 64; 256; 1024 |] });
      plain
        (Segfit
           {
             slab =
               [| 16; 32; 48; 64; 96; 128; 192; 256; 384; 512; 768; 1024; 1536; 2048 |];
           });
      plain (Freelist { best = false; sbrk = 4096 });
      plain (Freelist { best = false; sbrk = 32768 });
      plain (Freelist { best = true; sbrk = 32768 });
    ]
  in
  let geometry =
    List.concat_map
      (fun chunk ->
        List.concat_map
          (fun n ->
            List.map
              (fun fallback ->
                {
                  backend = Arena { n; chunk; fallback };
                  depth = 0;
                  threshold = default_threshold;
                })
              [ "first-fit"; "segfit" ])
          [ 8; 16; 32 ])
      [ 2048; 4096; 8192; 16384 ]
  in
  let depths =
    List.map
      (fun depth -> { backend = default_arena; depth; threshold = default_threshold })
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  let thresholds =
    List.map
      (fun threshold -> { backend = default_arena; depth = 0; threshold })
      [ 4096; 8192; 16384; 65536; 131072 ]
  in
  base @ geometry @ depths @ thresholds

(* -- mutation ----------------------------------------------------------------------- *)

let clamp lo hi v = max lo (min hi v)

let mutate_slab prng slab =
  let n = Array.length slab in
  match Prng.int prng 3 with
  | 0 when n > 2 ->
      (* drop a middle class *)
      let drop = 1 + Prng.int prng (n - 2) in
      Array.init (n - 1) (fun i -> if i < drop then slab.(i) else slab.(i + 1))
  | 1 when n > 1 ->
      (* split a gap at its 16-aligned midpoint *)
      let i = Prng.int prng (n - 1) in
      let mid = (slab.(i) + slab.(i + 1)) / 2 / 16 * 16 in
      if mid > slab.(i) && mid < slab.(i + 1) then
        Array.init (n + 1) (fun j ->
            if j <= i then slab.(j) else if j = i + 1 then mid else slab.(j - 1))
      else slab
  | _ ->
      (* extend the ladder upward, or retract it *)
      let top = slab.(n - 1) in
      if Prng.bool prng && top * 2 <= 4096 then Array.append slab [| top * 2 |]
      else if n > 1 then Array.sub slab 0 (n - 1)
      else slab

let random_arena prng =
  {
    backend =
      Arena
        {
          n = Prng.choose prng [| 8; 16; 32 |];
          chunk = Prng.choose prng [| 2048; 4096; 8192; 16384 |];
          fallback = Prng.choose prng [| "first-fit"; "segfit" |];
        };
    depth = 0;
    threshold = default_threshold;
  }

let mutate prng c =
  match c.backend with
  | Bsd ->
      (* no knobs; jump to a random arena geometry to keep the search moving *)
      random_arena prng
  | Freelist { best; sbrk } ->
      let sbrk =
        clamp 1024 262144 (if Prng.bool prng then sbrk * 2 else sbrk / 2)
      in
      { c with backend = Freelist { best; sbrk } }
  | Segfit { slab } -> { c with backend = Segfit { slab = mutate_slab prng slab } }
  | Arena { n; chunk; fallback } -> (
      match Prng.int prng 7 with
      | 0 ->
          { c with backend = Arena { n; chunk = clamp 512 65536 (chunk * 2); fallback } }
      | 1 ->
          { c with backend = Arena { n; chunk = clamp 512 65536 (chunk / 2); fallback } }
      | 2 -> { c with backend = Arena { n = clamp 2 128 (n * 2); chunk; fallback } }
      | 3 -> { c with backend = Arena { n = clamp 2 128 (n / 2); chunk; fallback } }
      | 4 ->
          let fallback =
            Prng.choose prng [| "first-fit"; "best-fit"; "bsd"; "segfit" |]
          in
          { c with backend = Arena { n; chunk; fallback } }
      | 5 -> { c with depth = Prng.int prng 9 }
      | _ ->
          {
            c with
            threshold =
              clamp 1024 1048576
                (if Prng.bool prng then c.threshold * 2 else c.threshold / 2);
          })

(* -- the search --------------------------------------------------------------------- *)

type options = {
  seed : int;
  generations : int;
  population : int;
  max_candidates : int;
}

let default_options = { seed = 42; generations = 4; population = 16; max_candidates = 512 }

type outcome = {
  workload : string;
  seed : int;
  results : result list;  (* every candidate, in evaluation order *)
  pareto : result list;  (* instructions ascending, heap descending *)
  baselines : (string * result) list;  (* the paper's fixed points *)
}

let baselines ctx =
  let fixed backend = normalize { backend; depth = 0; threshold = default_threshold } in
  let arena_default = fixed default_arena in
  ensure_predictors ctx [ arena_default ];
  let cce_cost =
    Cost_model.site_lookup
    + Cost_model.cce_per_alloc ~calls:ctx.test.Trace.calls
        ~allocs:(Trace.total_objects ctx.test)
  in
  [
    ("first-fit", eval ctx (fixed (Freelist { best = false; sbrk = default_sbrk })));
    ("bsd", eval ctx (fixed Bsd));
    ("arena-len4", eval ctx arena_default);
    ("arena-cce", eval_with_cost ctx arena_default ~predict_cost:cce_cost);
  ]

let search ?(options = default_options) ?(workload = "trace") ~train ~test () =
  let ctx =
    { train; test; prepared = Driver.prepare test; predictors = Hashtbl.create 16 }
  in
  let prng = Prng.create ~seed:(Int64.of_int options.seed) in
  let seen = Hashtbl.create 256 in
  let take_fresh cands =
    List.filter
      (fun c ->
        let k = key c in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      cands
  in
  let capped limit cands =
    if List.length cands <= limit then cands
    else List.filteri (fun i _ -> i < limit) cands
  in
  let results =
    ref (eval_batch ctx (capped options.max_candidates (take_fresh (grid_candidates ()))))
  in
  for _gen = 1 to options.generations do
    let room = options.max_candidates - List.length !results in
    if room > 0 then begin
      let parents = Array.of_list (pareto_front !results) in
      let children = ref [] in
      let fresh = ref 0 in
      let attempts = ref 0 in
      let want = min room options.population in
      while !fresh < want && !attempts < 50 * options.population do
        incr attempts;
        let parent = (Prng.choose prng parents).candidate in
        let child = normalize (mutate prng parent) in
        let k = key child in
        if not (Hashtbl.mem seen k) then begin
          Hashtbl.add seen k ();
          children := child :: !children;
          incr fresh
        end
      done;
      results := !results @ eval_batch ctx (List.rev !children)
    end
  done;
  {
    workload;
    seed = options.seed;
    results = !results;
    pareto = pareto_front !results;
    baselines = baselines ctx;
  }

(* -- rendering ---------------------------------------------------------------------- *)

let json_of_result r =
  Json.Obj
    [
      ("spec", Json.String (spec_string r.candidate));
      ("chain_depth", Json.Number (float_of_int r.candidate.depth));
      ("threshold", Json.Number (float_of_int r.candidate.threshold));
      ("instructions", Json.Number (float_of_int r.instructions));
      ("max_heap", Json.Number (float_of_int r.max_heap));
      ("allocs", Json.Number (float_of_int r.metrics.Metrics.allocs));
    ]

let json_of_outcome ?(engine = []) o =
  Json.Obj
    ([
       ("workload", Json.String o.workload);
       ("seed", Json.Number (float_of_int o.seed));
       ("candidates", Json.Number (float_of_int (List.length o.results)));
       ("pareto", Json.List (List.map json_of_result o.pareto));
       ( "baselines",
         Json.Obj (List.map (fun (n, r) -> (n, json_of_result r)) o.baselines) );
     ]
    @
    match engine with
    | [] -> []
    | counters ->
        [
          ( "engine",
            Json.Obj
              (List.map (fun (k, v) -> (k, Json.Number (float_of_int v))) counters)
          );
        ])

let table_of_outcome o =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-4s %-52s %-6s %10s %14s %12s\n" "#" "config" "chain"
       "threshold" "instructions" "max heap");
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf "P%-3d %-52s %-6s %10d %14d %12d\n" (i + 1)
           (spec_string r.candidate)
           (chain_string r.candidate)
           r.candidate.threshold r.instructions r.max_heap))
    o.pareto;
  List.iter
    (fun (name, r) ->
      Buffer.add_string buf
        (Printf.sprintf "%-4s %-52s %-6s %10d %14d %12d\n" "ref"
           (name ^ " = " ^ spec_string r.candidate)
           (chain_string r.candidate)
           r.candidate.threshold r.instructions r.max_heap))
    o.baselines;
  Buffer.contents buf

let markdown_header =
  "| workload | point | config | chain | threshold | instructions | max heap |\n\
   |---|---|---|---|---|---|---|\n"

let markdown_rows o =
  let row point r =
    Printf.sprintf "| %s | %s | `%s` | %s | %d | %d | %d |\n" o.workload point
      (spec_string r.candidate)
      (chain_string r.candidate)
      r.candidate.threshold r.instructions r.max_heap
  in
  let buf = Buffer.create 512 in
  (match o.pareto with
  | [] -> ()
  | best_instr :: _ ->
      let best_heap = List.nth o.pareto (List.length o.pareto - 1) in
      Buffer.add_string buf (row "tuned min-instructions" best_instr);
      Buffer.add_string buf (row "tuned min-heap" best_heap));
  List.iter
    (fun (name, r) -> Buffer.add_string buf (row name r))
    o.baselines;
  Buffer.contents buf
