(** The lifetime-oracle layer: a single interface over every way the
    simulator can answer "will this allocation die young?".

    The paper's offline pipeline — train on a profile run, compile the
    short-lived site database into the allocation system (§5.1) — is the
    [static] oracle, a wrapper over {!Predictor}.  The [online] oracle is
    profile-free: it starts empty, learns from the outcome of every
    prediction the replay feeds back, and promotes a site once a window
    of recent outcomes is unanimously short-lived, demoting it again
    after enough consecutive long-lived outcomes (hysteresis).

    Every oracle instance is private to one replay and its state depends
    only on the event stream it observes, so simulated results are
    deterministic at any domain count. *)

type online_params = {
  window : int;
      (** outcomes per site the verdict considers; [0] keeps every
          outcome (unbounded) *)
  promote : int;
      (** outcomes a site needs — all of them short — before it is
          promoted to predicted *)
  demote : int;
      (** consecutive long-lived outcomes that demote a predicted site *)
  threshold : int option;
      (** short-lived cutoff in allocated bytes; [None] uses the
          simulation config's threshold *)
}

val default_online_params : online_params
(** [{window = 256; promote = 4; demote = 4; threshold = None}]. *)

type spec = Spec_static | Spec_online of online_params
(** A parsed oracle spec, before any model or config is attached. *)

type t
(** An oracle: the static site database or the online trainer recipe. *)

val static : Predictor.t -> t
(** The offline-trained site database as an oracle. *)

val online :
  ?window:int -> ?promote:int -> ?demote:int -> ?threshold:int -> Config.t -> t
(** The online adaptive oracle; defaults as {!default_online_params}. *)

val is_online : t -> bool

val spec_of_string : string -> (spec, string) result
(** Parse [static] or [online:window=N:promote=K:demote=K:threshold=B]
    (',' accepted between parameters too).  Every parameter is optional
    and validated; errors are one line ending [(in spec %S)], mirroring
    the allocator-backend spec grammar, and never raise. *)

val canonical_spec : string -> (string, string) result
(** The canonical form: parameters in grammar order with defaults
    dropped, so a spec that only restates defaults collapses to the plain
    oracle name. *)

val of_spec : config:Config.t -> ?predictor:Predictor.t -> spec -> (t, string) result
(** Attach a parsed spec to a simulation config.  [Spec_static] requires
    [predictor] (the trained database) and errors without one;
    [Spec_online] ignores it. *)

val grammar_markdown : unit -> string
(** The oracle-spec grammar as a markdown table — the README embeds this
    verbatim (drift-tested). *)

type instance
(** One replay's worth of oracle: the driver-facing predictor plus a
    snapshot of the predicted site set.  Static instances are frozen;
    online instances own mutable window state, so every replay needs a
    fresh instance — both [instance_for_*] constructors always build new
    online state, never memoized, so consecutive replays cannot leak
    learned state into each other. *)

val instance_for_trace :
  ?pooled:bool -> t -> predict_cost:int -> Lp_trace.Trace.t -> instance
(** An instance over a materialized trace's interned tables.  [pooled]
    (default false) routes a static oracle through
    {!Predictor.for_trace_pooled} — the candidate-sweep fast path; it is
    ignored by online oracles, whose state is inherently per-instance. *)

val instance_for_source :
  t -> predict_cost:int -> Lp_trace.Source.t -> instance
(** An instance over a streaming source's incremental tables. *)

val driver_predictor : instance -> Lp_allocsim.Driver.predictor
(** The record {!Lp_allocsim.Driver.run_prepared} consumes.  For online
    oracles its [on_outcome] is the feedback path — the driver must be
    given this exact record so learning sees every outcome. *)

val snapshot : instance -> string list
(** The predicted portable site keys, rendered and sorted.  For a static
    oracle this is the database, replay-independent; for an online oracle
    it is the promoted set aggregated with {!Predictor.build}'s
    conservative rounding rule (a collapsed key survives only if every
    contributing observed site is promoted), so with an unbounded window
    and no hysteresis it converges to exactly what offline training on
    the same trace selects. *)
