(** Tunable parameters of lifetime prediction, with the paper's choices as
    defaults (§4.1 and §5.2). *)

type t = {
  short_lived_threshold : int;
      (** an object is short-lived if it dies before this many bytes are
          allocated; the paper uses 32 KB *)
  n_arenas : int;  (** arena blocking; the paper uses 16 *)
  arena_size : int;  (** bytes per arena; the paper uses 4 KB *)
  size_rounding : int;
      (** object sizes are rounded up to this multiple when mapping sites
          across runs; the paper found 4 best *)
  policy : Lp_callchain.Site.policy;
      (** which abstraction of the birth context keys a site *)
}

val default : t
(** The paper's configuration: 32 KB threshold, 16 × 4 KB arenas,
    rounding 4, complete cycle-eliminated chains. *)

val arena_config : t -> Lp_allocsim.Arena.config
(** The arena-backend slice of the configuration. *)
