(** Simulation glue: run a test trace through a set of registry allocators
    with a trained predictor, producing the measurements behind Tables 7,
    8 and 9.

    The replays are independent — each {!Lp_allocsim.Driver.run} owns its
    allocator state and only reads the trace and the predictor — so they
    execute concurrently on the {!Parallel} domain pool.
    [Parallel.with_domains 1] (or [LPALLOC_DOMAINS=1]) forces the
    sequential order, which produces bit-identical metrics: parallelism
    only changes scheduling, never results.

    Allocators are named {!Lp_allocsim.Registry} entries.  A backend that
    uses prediction (the arena allocator) expands into two jobs, one per
    prediction pricing: its own name with the fixed length-4 chain cost,
    and ["<name>-cce"] with the amortised call-chain-encryption cost
    (§5.1's two implementation strategies). *)

type t = { results : (string * Lp_allocsim.Metrics.t) list }

let default_allocators = [ "first-fit"; "bsd"; "arena" ]

let metrics t name =
  match List.assoc_opt name t.results with
  | Some m -> m
  | None ->
      failwith
        (Printf.sprintf "Simulate.metrics: no result named %S (have: %s)" name
           (String.concat ", " (List.map fst t.results)))

let names t = List.map fst t.results
let first_fit t = metrics t "first-fit"
let bsd t = metrics t "bsd"
let arena_len4 t = metrics t "arena"
let arena_cce t = metrics t "arena-cce"

let cce_cost (test : Lp_trace.Trace.t) =
  Lp_allocsim.Cost_model.site_lookup
  + Lp_allocsim.Cost_model.cce_per_alloc ~calls:test.calls
      ~allocs:(Lp_trace.Trace.total_objects test)

let arena_with_cost ~config ~predictor ~(test : Lp_trace.Trace.t) ~predict_cost =
  (* the memoizing predicted-site closure is created here, inside the
     calling job, so each parallel replay owns a private memo table *)
  let predicted = Predictor.for_trace predictor test in
  Lp_allocsim.Driver.run
    ~predictor:{ Lp_allocsim.Driver.predicted; predict_cost }
    test
    (Lp_allocsim.Registry.backend
       ~arena_config:(Config.arena_config config)
       "arena")

let run ?(allocators = default_allocators) ?(wrap = fun b -> b)
    ~(config : Config.t) ~(predictor : Predictor.t)
    ~(test : Lp_trace.Trace.t) () : t =
  let arena_config = Config.arena_config config in
  let jobs =
    List.concat_map
      (fun name ->
        (* [wrap] interposes on every backend — the sanitizer's hook; a
           well-behaved wrapper keeps the name and delegates the metrics *)
        let backend = wrap (Lp_allocsim.Registry.backend ~arena_config name) in
        let canonical = Lp_allocsim.Backend.name backend in
        if Lp_allocsim.Backend.uses_prediction backend then
          (* two pricings of the same predicting allocator; the predictor
             closure is built inside each job for a private memo table *)
          let with_cost predict_cost () =
            let predicted = Predictor.for_trace predictor test in
            Lp_allocsim.Driver.run
              ~predictor:{ Lp_allocsim.Driver.predicted; predict_cost }
              test backend
          in
          [
            (canonical, with_cost Lp_allocsim.Cost_model.predict_len4);
            (canonical ^ "-cce", with_cost (cce_cost test));
          ]
        else [ (canonical, fun () -> Lp_allocsim.Driver.run test backend) ])
      allocators
  in
  let metrics = Parallel.all (List.map snd jobs) in
  { results = List.map2 (fun (name, _) m -> (name, m)) jobs metrics }
