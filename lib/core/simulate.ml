(** Simulation glue: run a test trace through the allocators with a trained
    predictor, producing the measurements behind Tables 7, 8 and 9.

    The four replays (first-fit, BSD, and the two arena pricings) are
    independent — each {!Lp_allocsim.Driver.run} owns its allocator state
    and only reads the trace and the predictor — so they execute
    concurrently on the {!Parallel} domain pool.  [Parallel.with_domains 1]
    (or [LPALLOC_DOMAINS=1]) forces the sequential order, which produces
    bit-identical metrics: parallelism only changes scheduling, never
    results. *)

type arena_results = {
  len4 : Lp_allocsim.Metrics.t;  (** prediction priced at 18 instr/alloc *)
  cce : Lp_allocsim.Metrics.t;  (** prediction priced by call-chain encryption *)
}

type t = {
  first_fit : Lp_allocsim.Metrics.t;
  bsd : Lp_allocsim.Metrics.t;
  arena : arena_results;
}

let arena_with_cost ~config ~predictor ~(test : Lp_trace.Trace.t) ~predict_cost =
  (* the memoizing predicted-site closure is created here, inside the
     calling job, so each parallel replay owns a private memo table *)
  let predicted = Predictor.for_trace predictor test in
  Lp_allocsim.Driver.run test
    (Lp_allocsim.Driver.Arena
       { config = Config.arena_config config; predicted; predict_cost })

let run ~(config : Config.t) ~(predictor : Predictor.t)
    ~(test : Lp_trace.Trace.t) : t =
  let cce_cost =
    Lp_allocsim.Cost_model.site_lookup
    + Lp_allocsim.Cost_model.cce_per_alloc ~calls:test.calls
        ~allocs:(Lp_trace.Trace.total_objects test)
  in
  match
    Parallel.all
      [
        (fun () -> Lp_allocsim.Driver.run test Lp_allocsim.Driver.First_fit);
        (fun () -> Lp_allocsim.Driver.run test Lp_allocsim.Driver.Bsd);
        (fun () ->
          arena_with_cost ~config ~predictor ~test
            ~predict_cost:Lp_allocsim.Cost_model.predict_len4);
        (fun () -> arena_with_cost ~config ~predictor ~test ~predict_cost:cce_cost);
      ]
  with
  | [ first_fit; bsd; len4; cce ] -> { first_fit; bsd; arena = { len4; cce } }
  | _ -> assert false
