(** Simulation glue: run a test trace through a set of registry allocators
    with a trained predictor, producing the measurements behind Tables 7,
    8 and 9.

    The replays are independent — each {!Lp_allocsim.Driver.run} owns its
    allocator state and only reads the trace and the predictor — so they
    execute concurrently on the {!Parallel} domain pool.
    [Parallel.with_domains 1] (or [LPALLOC_DOMAINS=1]) forces the
    sequential order, which produces bit-identical metrics: parallelism
    only changes scheduling, never results.

    Allocators are named {!Lp_allocsim.Registry} entries.  A backend that
    uses prediction (the arena allocator) expands into two jobs, one per
    prediction pricing: its own name with the fixed length-4 chain cost,
    and ["<name>-cce"] with the amortised call-chain-encryption cost
    (§5.1's two implementation strategies). *)

type t = { results : (string * Lp_allocsim.Metrics.t) list }

let default_allocators = [ "first-fit"; "bsd"; "arena" ]

let metrics t name =
  match List.assoc_opt name t.results with
  | Some m -> m
  | None ->
      failwith
        (Printf.sprintf "Simulate.metrics: no result named %S (have: %s)" name
           (String.concat ", " (List.map fst t.results)))

let names t = List.map fst t.results
let first_fit t = metrics t "first-fit"
let bsd t = metrics t "bsd"
let arena_len4 t = metrics t "arena"
let arena_cce t = metrics t "arena-cce"

let cce_cost_of ~calls ~allocs =
  Lp_allocsim.Cost_model.site_lookup
  + Lp_allocsim.Cost_model.cce_per_alloc ~calls ~allocs

let cce_cost (test : Lp_trace.Trace.t) =
  cce_cost_of ~calls:test.calls ~allocs:(Lp_trace.Trace.total_objects test)

let arena_with_cost ~config ~oracle ~(test : Lp_trace.Trace.t) ~predict_cost =
  (* the oracle instance is created here, inside the calling job, so each
     parallel replay owns private lookup (and any online) state *)
  let inst = Oracle.instance_for_trace oracle ~predict_cost test in
  Lp_allocsim.Driver.run
    ~predictor:(Oracle.driver_predictor inst)
    test
    (Lp_allocsim.Registry.backend
       ~arena_config:(Config.arena_config config)
       "arena")

(* Allocator names may carry parameters ([segfit:slab=16+64], see
   {!Lp_allocsim.Registry.backend_of_spec}); a parameterized job is keyed
   by its canonical spec so several variants of one backend can run in the
   same sweep without colliding. *)
let resolve_spec ~arena_config name =
  match Lp_allocsim.Registry.backend_of_spec ~arena_config name with
  | Error msg -> failwith msg
  | Ok backend ->
      let display =
        if Lp_allocsim.Registry.is_spec name then
          match Lp_allocsim.Registry.canonical_spec name with
          | Ok c -> c
          | Error msg -> failwith msg
        else Lp_allocsim.Backend.name backend
      in
      (backend, display)

let run ?(allocators = default_allocators) ?(wrap = fun b -> b)
    ~(config : Config.t) ~(oracle : Oracle.t) ~(test : Lp_trace.Trace.t) () : t
    =
  let arena_config = Config.arena_config config in
  (* decode-once/replay-many: validate and memoize the trace a single
     time; every job below replays the prepared trace with pooled
     per-domain scratch *)
  let prepared = Lp_allocsim.Driver.prepare test in
  let jobs =
    List.concat_map
      (fun name ->
        (* [wrap] interposes on every backend — the sanitizer's hook; a
           well-behaved wrapper keeps the name and delegates the metrics *)
        let backend, display = resolve_spec ~arena_config name in
        let backend = wrap backend in
        if Lp_allocsim.Backend.uses_prediction backend then
          (* two pricings of the same predicting allocator; the oracle
             instance is built inside each job — a static oracle resets
             its domain's pooled memo instead of allocating one, an
             online oracle gets fresh per-replay learning state *)
          let with_cost predict_cost () =
            let inst =
              Oracle.instance_for_trace ~pooled:true oracle ~predict_cost test
            in
            Lp_allocsim.Driver.run_prepared
              ~predictor:(Oracle.driver_predictor inst)
              prepared backend
          in
          [
            (display, with_cost Lp_allocsim.Cost_model.predict_len4);
            (display ^ "-cce", with_cost (cce_cost test));
          ]
        else
          [ (display, fun () -> Lp_allocsim.Driver.run_prepared prepared backend) ])
      allocators
  in
  let metrics = Parallel.all (List.map snd jobs) in
  { results = List.map2 (fun (name, _) m -> (name, m)) jobs metrics }

(* The streaming twin of [run]: [source] opens a fresh single-shot stream,
   and each replay job opens its own on the domain that runs it
   ({!Parallel.map_sources}), so concurrent replays never share a cursor
   and per-domain memory is bounded by one stream.  Each job replays the
   identical event sequence through {!Lp_allocsim.Driver.run_source}, so
   the fan-out is byte-identical to sequential and to the materialized
   [run]. *)
let run_streamed ?(allocators = default_allocators) ?(wrap = fun b -> b)
    ?(decode_ahead = false) ~(config : Config.t) ~(oracle : Oracle.t)
    ~(source : unit -> Lp_trace.Source.t) () : t =
  let arena_config = Config.arena_config config in
  (* The CCE pricing needs the stream's call and object totals before any
     replay: file-backed sources declare both up front, text and
     generator sources pay one probe drain. *)
  let calls, allocs =
    let probe = source () in
    match
      ( probe.Lp_trace.Source.counters_now (),
        probe.Lp_trace.Source.n_objects_hint )
    with
    | Some c, Some n -> (c.Lp_trace.Source.calls, n)
    | _ ->
        Lp_trace.Source.iter (fun _ -> ()) probe;
        let c = Lp_trace.Source.counters probe in
        (c.Lp_trace.Source.calls, Lp_trace.Source.n_objects probe)
  in
  let jobs =
    List.concat_map
      (fun name ->
        let backend, display = resolve_spec ~arena_config name in
        let backend = wrap backend in
        if Lp_allocsim.Backend.uses_prediction backend then
          (* the oracle instance is built per job, over the job's own
             source, for private lookup (and any online) state *)
          let with_cost predict_cost (src : Lp_trace.Source.t) =
            let inst = Oracle.instance_for_source oracle ~predict_cost src in
            Lp_allocsim.Driver.run_source ~decode_ahead
              ~predictor:(Oracle.driver_predictor inst)
              src backend
          in
          [
            (display, with_cost Lp_allocsim.Cost_model.predict_len4);
            (display ^ "-cce", with_cost (cce_cost_of ~calls ~allocs));
          ]
        else
          [
            ( display,
              fun src -> Lp_allocsim.Driver.run_source ~decode_ahead src backend
            );
          ])
      allocators
  in
  let metrics = Parallel.map_sources source (List.map snd jobs) in
  { results = List.map2 (fun (name, _) m -> (name, m)) jobs metrics }
