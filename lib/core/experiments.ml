(** Experiment pipelines: one function per table of the paper's evaluation.

    Each function returns structured rows carrying both the measured value
    and the paper's reported value, so callers (the benchmark harness, the
    CLI, EXPERIMENTS.md generation) only format.  Traces come from the
    memoized workload registry: "test" is the measured input (the paper
    reports on the largest input set), "train" is the other input used for
    true prediction. *)

module Registry = Lp_workloads.Registry

let programs = Paper.program_order

let test_trace ?scale program = Registry.trace ?scale ~program ~input:"test" ()
let train_trace ?scale program = Registry.trace ?scale ~program ~input:"train" ()

(* -- Table 1: the programs --------------------------------------------------- *)

type table1_row = { program : string; description : string; input_notes : string }

let table1 () =
  List.map
    (fun name ->
      let p = Registry.find name in
      {
        program = name;
        description = p.Registry.description;
        input_notes = p.Registry.input_notes;
      })
    programs

(* -- Table 2: execution statistics -------------------------------------------- *)

type table2_row = {
  program : string;
  measured : Lp_trace.Stats.t;
  paper : Paper.table2_row;
}

let table2 ?scale () =
  List.map
    (fun program ->
      {
        program;
        measured = Lp_trace.Stats.compute (test_trace ?scale program);
        paper = Paper.table2 program;
      })
    programs

(* -- Table 3: lifetime quantiles ----------------------------------------------- *)

type table3_row = {
  program : string;
  p2 : Lp_quantile.Histogram.quartiles;  (** P² approximation, as the paper used *)
  exact : Lp_quantile.Histogram.quartiles;  (** true quantiles, for the footnote *)
  paper : float * float * float * float * float;
}

(* Exact weighted quantile over [(value, weight)] sorted by value: the
   smallest value whose cumulative weight reaches the ceiling rank
   ceil(p * total).  [int_of_float] floors, which picked a rank one too
   small whenever p * total was not an integer (e.g. with 6 weighted
   bytes, q25 must cover 2 bytes, not the 1 that floor(1.5) gives).
   Exposed for tests. *)
let weighted_quantile sorted ~total p =
  let target = int_of_float (Float.ceil (p *. float_of_int total)) in
  let rec go acc = function
    | [] -> 0.
    | (v, w) :: rest -> if acc + w >= target then v else go (acc + w) rest
  in
  go 0 sorted

let byte_weighted_quartiles trace =
  let lifetimes = Lp_trace.Lifetimes.compute trace in
  let hist = Lp_quantile.Histogram.create () in
  let exact = Lp_quantile.Exact.create () in
  let sizes = ref [] in
  Lp_trace.Trace.iter_allocs trace (fun ~obj ~size ~chain:_ ~key:_ ~tag:_ ->
      let lt = float_of_int lifetimes.lifetime.(obj) in
      Lp_quantile.Histogram.observe_weighted hist ~weight:size lt;
      sizes := (lt, size) :: !sizes);
  (* exact byte-weighted quantiles: expand by weight on the sorted list *)
  let sorted = List.sort (fun (a, _) (b, _) -> Float.compare a b) !sizes in
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 sorted in
  let quantile p = weighted_quantile sorted ~total p in
  List.iter (fun (lt, _) -> Lp_quantile.Exact.observe exact lt) sorted;
  let q = Lp_quantile.Histogram.quartiles hist in
  let exact_q =
    {
      Lp_quantile.Histogram.min = Lp_quantile.Exact.min exact;
      q25 = quantile 0.25;
      median = quantile 0.50;
      q75 = quantile 0.75;
      max = Lp_quantile.Exact.max exact;
    }
  in
  (q, exact_q)

let table3 ?scale () =
  List.map
    (fun program ->
      let p2, exact = byte_weighted_quartiles (test_trace ?scale program) in
      { program; p2; exact; paper = Paper.table3 program })
    programs

(* -- Table 4: self and true prediction ------------------------------------------ *)

type table4_row = {
  program : string;
  total_sites : int;
  self : Evaluate.t;
  true_ : Evaluate.t;
  paper : Paper.table4_row;
}

let table4 ?scale ?(config = Config.default) () =
  List.map
    (fun program ->
      let test = test_trace ?scale program in
      let train = train_trace ?scale program in
      let _, self = Evaluate.train_and_evaluate ~config ~train:test ~test in
      let _, true_ = Evaluate.train_and_evaluate ~config ~train ~test in
      {
        program;
        total_sites = self.Evaluate.total_sites;
        self;
        true_;
        paper = Paper.table4 program;
      })
    programs

(* -- Table 5: size-only prediction ------------------------------------------------ *)

type table5_row = {
  program : string;
  eval : Evaluate.t;
  paper : float * float * int;
}

let table5 ?scale ?(config = Config.default) () =
  let config = { config with policy = Lp_callchain.Site.Size_only } in
  List.map
    (fun program ->
      let test = test_trace ?scale program in
      let _, eval = Evaluate.train_and_evaluate ~config ~train:test ~test in
      { program; eval; paper = Paper.table5 program })
    programs

(* -- Table 6: call-chain length sweep ---------------------------------------------- *)

type table6_cell = { pred_pct : float; new_ref_pct : float }

type table6_row = {
  program : string;
  by_length : (string * table6_cell) list;  (** "1".."7" and "inf" *)
  paper : (float * float) list * int;
}

let lengths = [ 1; 2; 3; 4; 5; 6; 7 ]

let table6 ?scale ?(config = Config.default) () =
  List.map
    (fun program ->
      let test = test_trace ?scale program in
      let cell policy =
        let config = { config with policy } in
        let _, e = Evaluate.train_and_evaluate ~config ~train:test ~test in
        {
          pred_pct = Evaluate.predicted_pct e;
          new_ref_pct = Evaluate.new_ref_pct e;
        }
      in
      let by_length =
        List.map
          (fun n -> (string_of_int n, cell (Lp_callchain.Site.Last_callers n)))
          lengths
        @ [ ("inf", cell Lp_callchain.Site.Complete_chain) ]
      in
      { program; by_length; paper = Paper.table6 program })
    programs

(* -- Tables 7-9: simulation ----------------------------------------------------------- *)

type simulation_row = {
  program : string;
  self_sim : Simulate.t;  (** trained on the test input itself *)
  true_sim : Simulate.t;  (** trained on the train input *)
}

let simulation_cache : (string, simulation_row) Hashtbl.t = Hashtbl.create 8

let policy_tag = function
  | Lp_callchain.Site.Complete_chain -> "chain"
  | Lp_callchain.Site.Last_callers n -> Printf.sprintf "last%d" n
  | Lp_callchain.Site.Size_only -> "size"
  | Lp_callchain.Site.Encrypted_key -> "cce"

(* The key must cover everything the cached row depends on: the program and
   scale, but also every Config field that reaches training or simulation —
   a sweep that varies the threshold or arena geometry must never be served
   a row computed under different settings — and the allocator set. *)
let cache_key ?scale ?allocators ~(config : Config.t) program =
  Printf.sprintf "%s/%s/t%d/a%dx%d/r%d/%s/%s" program
    (match scale with None -> "1" | Some s -> string_of_float s)
    config.short_lived_threshold config.n_arenas config.arena_size
    config.size_rounding (policy_tag config.policy)
    (String.concat ","
       (match allocators with None -> Simulate.default_allocators | Some l -> l))

let compute_simulation ?scale ?allocators ~config program =
  let test = test_trace ?scale program in
  let train = train_trace ?scale program in
  let table_self = Train.collect ~config test in
  let self_pred = Predictor.build ~config ~funcs:test.Lp_trace.Trace.funcs table_self in
  let table_true = Train.collect ~config train in
  let true_pred = Predictor.build ~config ~funcs:train.Lp_trace.Trace.funcs table_true in
  {
    program;
    self_sim =
      Simulate.run ?allocators ~config ~oracle:(Oracle.static self_pred) ~test ();
    true_sim =
      Simulate.run ?allocators ~config ~oracle:(Oracle.static true_pred) ~test ();
  }

let simulate_program ?scale ?allocators ?(config = Config.default) program =
  let key = cache_key ?scale ?allocators ~config program in
  match Hashtbl.find_opt simulation_cache key with
  | Some r -> r
  | None ->
      let row = compute_simulation ?scale ?allocators ~config program in
      Hashtbl.replace simulation_cache key row;
      row

(* Fill the simulation cache for every program, fanning the per-program
   jobs out over the domain pool.  Traces are materialised sequentially
   first (the workload registry's memo table is not domain-safe); after
   that each job only reads shared data, so the simulations — eight
   [Driver.run]s per program — are embarrassingly parallel.  Tables 7-9
   call this, so a full bench run parallelises across programs while a
   single [Simulate.run] still parallelises across allocators. *)
let simulate_all ?scale ?allocators ?(config = Config.default) () =
  let missing =
    List.filter
      (fun program ->
        not (Hashtbl.mem simulation_cache (cache_key ?scale ?allocators ~config program)))
      programs
  in
  List.iter
    (fun program ->
      ignore (test_trace ?scale program);
      ignore (train_trace ?scale program))
    missing;
  Parallel.map
    (fun program -> compute_simulation ?scale ?allocators ~config program)
    missing
  |> List.iter (fun row ->
         Hashtbl.replace simulation_cache
           (cache_key ?scale ?allocators ~config row.program)
           row)

type table7_row = {
  program : string;
  total_allocs : int;
  arena_alloc_pct : float;
  total_bytes : int;
  arena_bytes_pct : float;
  paper : float * float * float * float;
}

let table7 ?scale ?config () =
  simulate_all ?scale ?config ();
  List.map
    (fun program ->
      let sim = (simulate_program ?scale ?config program).true_sim in
      let m = Simulate.arena_len4 sim in
      {
        program;
        total_allocs = m.Lp_allocsim.Metrics.allocs;
        arena_alloc_pct = Lp_allocsim.Metrics.arena_alloc_pct m;
        total_bytes = m.Lp_allocsim.Metrics.total_bytes;
        arena_bytes_pct = Lp_allocsim.Metrics.arena_bytes_pct m;
        paper = Paper.table7 program;
      })
    programs

type table8_row = {
  program : string;
  first_fit_heap : int;
  self_arena_heap : int;
  true_arena_heap : int;
  paper : float * float * float * float * float;
}

let table8 ?scale ?config () =
  simulate_all ?scale ?config ();
  List.map
    (fun program ->
      let row = simulate_program ?scale ?config program in
      {
        program;
        first_fit_heap = (Simulate.first_fit row.true_sim).Lp_allocsim.Metrics.max_heap;
        self_arena_heap = (Simulate.arena_len4 row.self_sim).Lp_allocsim.Metrics.max_heap;
        true_arena_heap = (Simulate.arena_len4 row.true_sim).Lp_allocsim.Metrics.max_heap;
        paper = Paper.table8 program;
      })
    programs

type table9_row = {
  program : string;
  bsd : float * float;
  first_fit : float * float;
  arena_len4 : float * float;
  arena_cce : float * float;
  paper : (float * float) * (float * float) * (float * float) * (float * float);
}

let table9 ?scale ?config () =
  simulate_all ?scale ?config ();
  List.map
    (fun program ->
      let row = (simulate_program ?scale ?config program).true_sim in
      let per (m : Lp_allocsim.Metrics.t) = (m.instr_per_alloc, m.instr_per_free) in
      {
        program;
        bsd = per (Simulate.bsd row);
        first_fit = per (Simulate.first_fit row);
        arena_len4 = per (Simulate.arena_len4 row);
        arena_cce = per (Simulate.arena_cce row);
        paper = Paper.table9 program;
      })
    programs

(* -- Ablations beyond the paper --------------------------------------------------------- *)

type threshold_point = {
  threshold : int;
  predicted_pct : float;
  error_pct : float;
  sites : int;
}

(** §4.1 asks "how short is short-lived?" — sweep the threshold. *)
let threshold_sweep ?scale ~program ~thresholds () =
  let test = test_trace ?scale program in
  let train = train_trace ?scale program in
  List.map
    (fun threshold ->
      let config = { Config.default with short_lived_threshold = threshold } in
      let _, e = Evaluate.train_and_evaluate ~config ~train ~test in
      {
        threshold;
        predicted_pct = Evaluate.predicted_pct e;
        error_pct = Evaluate.error_pct e;
        sites = e.Evaluate.sites_used;
      })
    thresholds

type geometry_point = {
  n_arenas : int;
  arena_size : int;
  arena_bytes_pct : float;
  heap_vs_first_fit_pct : float;
}

(** §5.2's blocking decision: sweep arena count x size at fixed 64 KB and
    beyond (GHOST's 6 KB objects only fit once arenas reach 8 KB). *)
let geometry_sweep ?scale ~program ~geometries () =
  let test = test_trace ?scale program in
  let train = train_trace ?scale program in
  let ff = Lp_allocsim.Driver.run_named test "first-fit" in
  List.map
    (fun (n_arenas, arena_size) ->
      let config = { Config.default with n_arenas; arena_size } in
      let table = Train.collect ~config train in
      let predictor = Predictor.build ~config ~funcs:train.Lp_trace.Trace.funcs table in
      let m =
        Simulate.arena_with_cost ~config ~oracle:(Oracle.static predictor) ~test
          ~predict_cost:Lp_allocsim.Cost_model.predict_len4
      in
      {
        n_arenas;
        arena_size;
        arena_bytes_pct = Lp_allocsim.Metrics.arena_bytes_pct m;
        heap_vs_first_fit_pct =
          100. *. float_of_int m.Lp_allocsim.Metrics.max_heap
          /. float_of_int (max 1 ff.Lp_allocsim.Metrics.max_heap);
      })
    geometries

type rounding_point = { rounding : int; predicted_pct : float; error_pct : float }

(** §4.1's size-rounding choice for cross-run site mapping. *)
let rounding_sweep ?scale ~program ~roundings () =
  let test = test_trace ?scale program in
  let train = train_trace ?scale program in
  List.map
    (fun rounding ->
      let config = { Config.default with size_rounding = rounding } in
      let _, e = Evaluate.train_and_evaluate ~config ~train ~test in
      {
        rounding;
        predicted_pct = Evaluate.predicted_pct e;
        error_pct = Evaluate.error_pct e;
      })
    roundings

type policy_point = {
  min_short_fraction : float;
  predicted_pct : float;
  error_pct : float;
}

(** The all-short rule vs fraction-based acceptance (§4.1's error-cost
    discussion). *)
let policy_sweep ?scale ~program ~fractions () =
  let test = test_trace ?scale program in
  let train = train_trace ?scale program in
  let config = Config.default in
  let table = Train.collect ~config train in
  List.map
    (fun f ->
      let selection =
        if f >= 1.0 then Predictor.All_short else Predictor.Fraction f
      in
      let predictor =
        Predictor.build ~selection ~config ~funcs:train.Lp_trace.Trace.funcs table
      in
      let e = Evaluate.run ~config predictor test in
      {
        min_short_fraction = f;
        predicted_pct = Evaluate.predicted_pct e;
        error_pct = Evaluate.error_pct e;
      })
    fractions

(* -- Locality experiment (beyond the paper's tables) -------------------------- *)

type locality_row = {
  program : string;
  cache_kb : int;
  refs : int;  (** cache accesses replayed *)
  ff_miss_pct : float;
  bsd_miss_pct : float;
  arena_miss_pct : float;
  ff_pages : int;  (** distinct 4 KB pages the reference stream touched *)
  bsd_pages : int;
  arena_pages : int;
}

(** The paper's introduction claims segregation "localizes the references to
    short-lived objects, reducing the cache and page miss rates" but reports
    no miss rates.  This experiment replays each trace's reference stream at
    the addresses each allocator assigned, through a small set-associative
    cache, with true prediction driving the arena. *)
let locality ?scale ?(config = Config.default) ?(cache_kb = 16) () =
  List.map
    (fun program ->
      let test = test_trace ?scale program in
      let train = train_trace ?scale program in
      let table = Train.collect ~config train in
      let predictor = Predictor.build ~config ~funcs:train.Lp_trace.Trace.funcs table in
      let fresh () = Lp_allocsim.Cache.create ~size_bytes:(cache_kb * 1024) () in
      let run_with ?predictor name =
        let cache = fresh () in
        let (_ : Lp_allocsim.Metrics.t) =
          Lp_allocsim.Driver.run_named ~cache ?predictor
            ~arena_config:(Config.arena_config config) test name
        in
        ( Lp_allocsim.Cache.accesses cache,
          100. *. Lp_allocsim.Cache.miss_rate cache,
          Lp_allocsim.Cache.footprint_pages cache )
      in
      let refs, ff, ff_pages = run_with "first-fit" in
      let _, bsd, bsd_pages = run_with "bsd" in
      let predicted = Predictor.for_trace predictor test in
      let _, arena, arena_pages =
        run_with
          ~predictor:
            {
              Lp_allocsim.Driver.predicted;
              predict_cost = Lp_allocsim.Cost_model.predict_len4;
              short_threshold = config.Config.short_lived_threshold;
              on_outcome = None;
            }
          "arena"
      in
      {
        program;
        cache_kb;
        refs;
        ff_miss_pct = ff;
        bsd_miss_pct = bsd;
        arena_miss_pct = arena;
        ff_pages;
        bsd_pages;
        arena_pages;
      })
    programs

(* -- Generational-collector experiment (the paper's §1.1 claim) --------------- *)

type generational_row = {
  program : string;
  baseline : Lp_allocsim.Generational.stats;
  pretenured : Lp_allocsim.Generational.stats;
  copy_reduction_pct : float;  (** how much copying work pretenuring removed *)
}

(** "Our approach can improve the performance of generational collectors by
    predicting object lifetimes when they are born": allocate objects whose
    site the short-lived database does NOT contain directly into the old
    generation and measure the nursery copying saved (true prediction). *)
let generational ?scale ?(config = Config.default) ?gen_config () =
  List.map
    (fun program ->
      let test = test_trace ?scale program in
      let train = train_trace ?scale program in
      let table = Train.collect ~config train in
      let predictor = Predictor.build ~config ~funcs:train.Lp_trace.Trace.funcs table in
      let predicted = Predictor.for_trace predictor test in
      let baseline =
        Lp_allocsim.Generational.run ?config:gen_config
          ~pretenure:(fun ~obj:_ ~size:_ ~chain:_ ~key:_ -> false)
          test
      in
      let pretenured =
        Lp_allocsim.Generational.run ?config:gen_config
          ~pretenure:(fun ~obj ~size ~chain ~key ->
            not (predicted ~obj ~size ~chain ~key))
          test
      in
      let reduction =
        if baseline.copied_bytes = 0 then 0.
        else
          100.
          *. (1.
              -. float_of_int pretenured.copied_bytes
                 /. float_of_int baseline.copied_bytes)
      in
      { program; baseline; pretenured; copy_reduction_pct = reduction })
    programs

(* -- Type-based prediction (the paper's §2 future work) ------------------------ *)

type type_row = {
  program : string;
  tagged_bytes_pct : float;  (** how much of the trace carries a type tag *)
  type_only_pct : float;  (** predicted short-lived bytes, keyed by type *)
  type_size_pct : float;  (** keyed by type + rounded size *)
  size_only_pct : float;  (** Table 5's key, for comparison *)
  site_size_pct : float;  (** Table 4's key, for comparison *)
}

(* Generic all-short trainer over an arbitrary (string list, size) key. *)
let keyed_prediction ~key_of ~threshold ~train ~test =
  let train_keys : (bool * int) Portable.Table.t = Portable.Table.create 256 in
  let fold trace f =
    let lifetimes = Lp_trace.Lifetimes.compute trace in
    Lp_trace.Trace.iter_allocs trace (fun ~obj ~size ~chain ~key ~tag ->
        let short = Lp_trace.Lifetimes.is_short_lived lifetimes ~threshold obj in
        f ~obj ~size ~chain ~key ~tag ~short)
  in
  fold train (fun ~obj:_ ~size ~chain ~key ~tag ~short ->
      let k = key_of train ~size ~chain ~key ~tag in
      match Portable.Table.find_opt train_keys k with
      | Some (all_short, count) ->
          Portable.Table.replace train_keys k (all_short && short, count + 1)
      | None -> Portable.Table.replace train_keys k (short, 1));
  let total = ref 0 and correct = ref 0 in
  fold test (fun ~obj:_ ~size ~chain ~key ~tag ~short ->
      total := !total + size;
      let k = key_of test ~size ~chain ~key ~tag in
      match Portable.Table.find_opt train_keys k with
      | Some (true, _) when short -> correct := !correct + size
      | _ -> ());
  100. *. float_of_int !correct /. float_of_int (max 1 !total)

(** Compare prediction keyed by the object's type tag (what a compiler for a
    typed language could supply at no run-time cost) against size-only and
    site+size keys — the experiment the paper defers to future work. *)
let by_type ?scale ?(config = Config.default) () =
  let threshold = config.short_lived_threshold in
  let rounding = config.size_rounding in
  let tag_name (trace : Lp_trace.Trace.t) tag =
    if tag < 0 then "<untagged>" else trace.tags.(tag)
  in
  List.map
    (fun program ->
      let test = test_trace ?scale program in
      let train = train_trace ?scale program in
      let tagged = ref 0 and total = ref 0 in
      Lp_trace.Trace.iter_allocs test (fun ~obj:_ ~size ~chain:_ ~key:_ ~tag ->
          total := !total + size;
          if tag >= 0 then tagged := !tagged + size);
      let type_only =
        keyed_prediction ~threshold ~train ~test ~key_of:(fun trace ~size:_ ~chain:_ ~key:_ ~tag ->
            { Portable.chain = [ tag_name trace tag ]; size = 0 })
      in
      let type_size =
        keyed_prediction ~threshold ~train ~test ~key_of:(fun trace ~size ~chain:_ ~key:_ ~tag ->
            {
              Portable.chain = [ tag_name trace tag ];
              size = Lp_callchain.Site.round_size ~multiple:rounding size;
            })
      in
      let size_only =
        keyed_prediction ~threshold ~train ~test ~key_of:(fun _ ~size ~chain:_ ~key:_ ~tag:_ ->
            { Portable.chain = []; size = Lp_callchain.Site.round_size ~multiple:rounding size })
      in
      let site_size =
        let _, e = Evaluate.train_and_evaluate ~config ~train ~test in
        Evaluate.predicted_pct e
      in
      {
        program;
        tagged_bytes_pct = 100. *. float_of_int !tagged /. float_of_int (max 1 !total);
        type_only_pct = type_only;
        type_size_pct = type_size;
        size_only_pct = size_only;
        site_size_pct = site_size;
      })
    programs

(* -- Oracle comparison: offline (self / cross) vs online adaptive ---------------- *)

type oracle_row = {
  program : string;
  oracle : string;  (** "self" | "cross" | "online" *)
  instr_per_alloc : float;
  overhead_pct : float;  (** malloc-time instruction overhead vs the self oracle *)
  predictions : int;
  mispredict_short_pct : float;  (** predicted short, lived long — arena pollution *)
  mispredict_long_pct : float;  (** predicted long, died short — missed placement *)
}

(** The six workloads of the oracle experiment: the paper's five plus the
    AST interpreter, which exercises the online oracle's cold-start path
    hardest (its hot sites appear late, behind the dispatch loop). *)
let oracle_programs = programs @ [ "pint" ]

(** The PR-10 headline experiment: one arena replay per (workload, oracle)
    with the same charged prediction cost, comparing the offline predictor
    trained on the test input itself (the oracle bound, [self]), the
    offline predictor trained on the other input (the paper's deployable
    mode, [cross]), and the profile-free online oracle that learns site
    lifetimes during the replay itself ([online], default
    window/hysteresis).  Overhead is malloc-time instructions relative to
    [self]; mispredict rates are per oracle consultation, classified by
    the replay's own outcome tracking.  Deterministic at any domain count:
    each replay is a single sequential [Driver] run whose oracle state is
    seeded from the event stream only. *)
let oracle_comparison ?(scale = 0.1) ?(config = Config.default) () =
  List.concat_map
    (fun program ->
      let test = test_trace ~scale program in
      let train = train_trace ~scale program in
      let static_of trace =
        let table = Train.collect ~config trace in
        Oracle.static
          (Predictor.build ~config ~funcs:trace.Lp_trace.Trace.funcs table)
      in
      let run oracle =
        Simulate.arena_with_cost ~config ~oracle ~test
          ~predict_cost:Lp_allocsim.Cost_model.predict_len4
      in
      let modes =
        [
          ("self", run (static_of test));
          ("cross", run (static_of train));
          ("online", run (Oracle.online config));
        ]
      in
      let base =
        match modes with
        | ("self", m) :: _ -> m.Lp_allocsim.Metrics.instr_per_alloc
        | _ -> assert false
      in
      List.map
        (fun (name, (m : Lp_allocsim.Metrics.t)) ->
          let rate n =
            100. *. float_of_int n /. float_of_int (max 1 m.predictions)
          in
          {
            program;
            oracle = name;
            instr_per_alloc = m.instr_per_alloc;
            overhead_pct =
              (if base = 0. then 0.
               else 100. *. (m.instr_per_alloc -. base) /. base);
            predictions = m.predictions;
            mispredict_short_pct = rate m.mispredicts_short_lived;
            mispredict_long_pct = rate m.mispredicts_long_lived;
          })
        modes)
    oracle_programs

(* The markdown serialization is what EXPERIMENTS.md commits and what the
   drift test and the gating CI job regenerate — keep formatting stable. *)
let oracle_markdown_header =
  "| workload | oracle | instr/alloc | vs self % | predictions | mispredict \
   short % | mispredict long % |\n\
   |---|---|---|---|---|---|---|\n"

let oracle_markdown_rows rows =
  String.concat ""
    (List.map
       (fun r ->
         Printf.sprintf "| %s | %s | %.1f | %+.1f | %d | %.2f | %.2f |\n"
           r.program r.oracle r.instr_per_alloc r.overhead_pct r.predictions
           r.mispredict_short_pct r.mispredict_long_pct)
       rows)

let oracle_markdown ?scale ?config () =
  oracle_markdown_header
  ^ oracle_markdown_rows (oracle_comparison ?scale ?config ())

(* -- Allocator-policy ablation: first fit vs best fit --------------------------- *)

type allocator_cell = { heap : int; cost : float  (** instr per alloc+free *) }
type allocator_row = { program : string; cells : (string * allocator_cell) list }

(** The paper picks first fit as its baseline for its "relatively good
    memory utilization" (§5.2, after Knuth).  This ablation runs every
    non-predicting registry backend — best fit (search time for tighter
    packing), BSD buckets, segregated fit — over the same traces, so a new
    registry entry gets a column for free. *)
let allocator_policies ?scale ?allocators () =
  let allocators =
    match allocators with
    | Some l -> l
    | None ->
        List.filter
          (fun n ->
            not
              (Lp_allocsim.Backend.uses_prediction (Lp_allocsim.Registry.backend n)))
          (Lp_allocsim.Registry.names ())
  in
  List.map
    (fun program ->
      let test = test_trace ?scale program in
      let cells =
        List.map
          (fun name ->
            let m = Lp_allocsim.Driver.run_named test name in
            ( Lp_allocsim.Registry.canonical_name name,
              {
                heap = m.Lp_allocsim.Metrics.max_heap;
                cost = m.instr_per_alloc +. m.instr_per_free;
              } ))
          allocators
      in
      { program; cells })
    programs
