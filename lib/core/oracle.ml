(* The lifetime-oracle layer: one interface over every way the simulator
   can answer "will this allocation die young?".

   The paper's pipeline trains a site database offline and compiles it
   into the allocation system (§5.1) — that is the [Static] oracle, a
   thin wrapper over {!Predictor}.  The [Online] oracle removes the
   profile run entirely: it starts empty, watches the outcome of every
   prediction it makes (the driver feeds each object's lifetime back when
   it is known), and promotes a site to short-lived predicted once a
   window of its recent outcomes is unanimously short — with hysteresis,
   so a single long-lived stray does not flap the verdict.

   Determinism: an online instance's state is a pure function of the
   event stream it observed.  The driver consults the oracle in event
   order and reports outcomes in event order (survivors in object-id
   order at the end), and every instance is private to one replay, so
   results are identical at any domain count. *)

type online_params = {
  window : int;  (* outcomes per site considered; 0 = unbounded *)
  promote : int;  (* observations required before promotion *)
  demote : int;  (* consecutive long outcomes that demote *)
  threshold : int option;  (* short-lived cutoff; None = config's *)
}

let default_window = 256
let default_promote = 4
let default_demote = 4

let default_online_params =
  {
    window = default_window;
    promote = default_promote;
    demote = default_demote;
    threshold = None;
  }

type spec = Spec_static | Spec_online of online_params

type t =
  | Static of Predictor.t
  | Online of { params : online_params; config : Config.t }

let static predictor = Static predictor

let online ?(window = default_window) ?(promote = default_promote)
    ?(demote = default_demote) ?threshold config =
  Online { params = { window; promote; demote; threshold }; config }

let is_online = function Online _ -> true | Static _ -> false

(* -- spec grammar -----------------------------------------------------------------

   [static] or [online:window=N:promote=K:demote=K:threshold=B] — the
   same shape as the allocator-backend specs of {!Lp_allocsim.Registry}
   (':' between parameters, every error one line, never raising), except
   ',' is accepted as a separator too so an oracle spec can ride inside a
   comma-free CLI position. *)

type spec_param = {
  key : string;
  grammar : string;
  param_doc : string;
  default : string;
}

let online_spec_params =
  [
    {
      key = "window";
      grammar = "<n>";
      param_doc =
        "sliding outcome window per site, in [0, 65536]; 0 keeps every \
         outcome";
      default = string_of_int default_window;
    };
    {
      key = "promote";
      grammar = "<n>";
      param_doc =
        "outcomes a site needs (all short) before it predicts, at least 1";
      default = string_of_int default_promote;
    };
    {
      key = "demote";
      grammar = "<n>";
      param_doc =
        "consecutive long-lived outcomes that revoke a prediction, at \
         least 1";
      default = string_of_int default_demote;
    };
    {
      key = "threshold";
      grammar = "<bytes>";
      param_doc =
        "short-lived cutoff in allocated bytes, at least 1; defaults to \
         the simulation threshold";
      default = "config";
    };
  ]

let oracle_names = [ "static"; "online" ]

let spec_error spec fmt =
  Printf.ksprintf
    (fun msg -> Error (Printf.sprintf "%s (in spec %S)" msg spec))
    fmt

let ( let* ) = Result.bind

let int_value spec ~key v =
  match int_of_string_opt v with
  | Some n -> Ok n
  | None -> spec_error spec "parameter %s: %S is not an integer" key v

(* Split on ':' and ',' alike; the first segment names the oracle. *)
let segments_of spec =
  String.split_on_char ':' spec |> List.concat_map (String.split_on_char ',')

let parse_params spec segments =
  List.fold_left
    (fun acc seg ->
      let* acc = acc in
      match String.index_opt seg '=' with
      | None -> spec_error spec "bad parameter %S: expected key=value" seg
      | Some i ->
          let key = String.sub seg 0 i in
          let value = String.sub seg (i + 1) (String.length seg - i - 1) in
          if not (List.exists (fun p -> p.key = key) online_spec_params) then
            spec_error spec "unknown parameter %S for online (valid: %s)" key
              (String.concat ", " (List.map (fun p -> p.key) online_spec_params))
          else if List.mem_assoc key acc then
            spec_error spec "duplicate parameter %S" key
          else Ok (acc @ [ (key, value) ]))
    (Ok []) segments

let online_of_kvs spec kvs =
  let* window =
    match List.assoc_opt "window" kvs with
    | None -> Ok default_window
    | Some v ->
        let* n = int_value spec ~key:"window" v in
        if n < 0 || n > 65536 then
          spec_error spec "parameter window: %d outside [0, 65536]" n
        else Ok n
  in
  let* promote =
    match List.assoc_opt "promote" kvs with
    | None -> Ok default_promote
    | Some v ->
        let* n = int_value spec ~key:"promote" v in
        if n < 1 then spec_error spec "parameter promote: %d is not positive" n
        else if window > 0 && n > window then
          spec_error spec "parameter promote: %d exceeds window %d" n window
        else Ok n
  in
  let* demote =
    match List.assoc_opt "demote" kvs with
    | None -> Ok default_demote
    | Some v ->
        let* n = int_value spec ~key:"demote" v in
        if n < 1 then spec_error spec "parameter demote: %d is not positive" n
        else Ok n
  in
  let* threshold =
    match List.assoc_opt "threshold" kvs with
    | None -> Ok None
    | Some v ->
        let* n = int_value spec ~key:"threshold" v in
        if n < 1 then
          spec_error spec "parameter threshold: %d is not positive" n
        else Ok (Some n)
  in
  Ok { window; promote; demote; threshold }

let spec_of_string spec =
  match segments_of spec with
  | [] | [ "" ] -> Error (Printf.sprintf "empty oracle spec %S" spec)
  | "static" :: segments ->
      if segments = [] then Ok Spec_static
      else spec_error spec "oracle static takes no parameters"
  | "online" :: segments ->
      let* kvs = parse_params spec segments in
      let* params = online_of_kvs spec kvs in
      Ok (Spec_online params)
  | name :: _ ->
      Error
        (Printf.sprintf "unknown oracle %S (known: %s)" name
           (String.concat ", " oracle_names))

(* Alias-free already; parameters re-listed in grammar order with
   defaults dropped, so a spec that only restates defaults collapses to
   the plain name. *)
let canonical_spec spec =
  let* parsed = spec_of_string spec in
  match parsed with
  | Spec_static -> Ok "static"
  | Spec_online p ->
      let kept =
        List.filter_map
          (fun (key, value) ->
            match value with
            | None -> None
            | Some v -> Some (Printf.sprintf "%s=%d" key v))
          [
            ("window", if p.window = default_window then None else Some p.window);
            ( "promote",
              if p.promote = default_promote then None else Some p.promote );
            ("demote", if p.demote = default_demote then None else Some p.demote);
            ("threshold", p.threshold);
          ]
      in
      Ok (String.concat ":" ("online" :: kept))

let grammar_markdown () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "| oracle | parameter | value | default | meaning |\n\
     |---|---|---|---|---|\n";
  Buffer.add_string buf
    "| `static` | — | — | — | the offline-trained site database; takes no \
     parameters |\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "| `online` | `%s` | `%s` | `%s` | %s |\n" p.key
           p.grammar p.default p.param_doc))
    online_spec_params;
  Buffer.contents buf

let of_spec ~config ?predictor spec =
  match spec with
  | Spec_static -> (
      match predictor with
      | Some p -> Ok (static p)
      | None -> Error "oracle static needs a trained site database")
  | Spec_online params -> Ok (Online { params; config })

(* -- instances --------------------------------------------------------------------

   An instance is one replay's worth of oracle: the {!Lp_allocsim.Driver}
   predictor record plus a way to snapshot the predicted site set
   afterwards.  Static instances are stateless (the database is frozen);
   online instances own mutable window state and must be created fresh
   per replay — {!instance_for_trace} always builds new state, so two
   consecutive replays of the same prepared trace cannot leak learning
   from one into the other. *)

type instance = {
  driver : Lp_allocsim.Driver.predictor;
  snap : unit -> string list;
}

let driver_predictor i = i.driver
let snapshot i = i.snap ()

let static_snapshot p () =
  let acc = ref [] in
  Predictor.iter_keys p (fun k -> acc := Portable.to_string k :: !acc);
  List.sort String.compare !acc

(* -- the online trainer ----------------------------------------------------------

   Per-site state lives in parallel arrays indexed by a dense site id;
   the (chain, size) -> id map is the same no-allocation open-addressing
   probe as {!Predictor}'s memo.  Each outcome updates a bounded window
   (a byte ring when [window > 0], plain counters when unbounded), a
   consecutive-long-outcome streak, and the promoted flag:

     promoted   <- window full enough ([>= promote]) and unanimously short
     demoted    <- [demote] consecutive long outcomes
     in between   the verdict is sticky (hysteresis)

   With [window=0, promote=1, demote=1] the promoted set after a replay
   of the training trace is exactly the all-short site set {!Train}
   collects — the convergence property the test suite checks. *)

let memo_empty = min_int

type online_state = {
  params : online_params;
  threshold : int;
  policy : Lp_callchain.Site.policy;
  rounding : int;
  chain_of : int -> Lp_callchain.Chain.t;
  funcs : unit -> Lp_callchain.Func.table;
  (* (chain, size) -> site id, open addressing, load < 1/2 *)
  mutable mchains : int array;
  mutable msizes : int array;
  mutable mids : int array;
  mutable mcap : int;
  mutable mcount : int;
  (* per-site state, dense ids in first-seen order *)
  mutable st_chain : int array;
  mutable st_size : int array;
  mutable st_key : int array;
  mutable st_obs : int array;  (* outcomes ever recorded *)
  mutable st_wobs : int array;  (* outcomes currently in the window *)
  mutable st_wshort : int array;  (* short outcomes in the window *)
  mutable st_streak : int array;  (* consecutive long outcomes *)
  mutable st_promoted : Bytes.t;
  mutable st_ring : Bytes.t array;  (* outcome ring; empty until first use *)
  mutable st_rpos : int array;
  mutable n_sites : int;
  obj_site : Lp_trace.Grow.t;  (* object -> birth site id, -1 untracked *)
}

let create_state ~params ~threshold ~(config : Config.t) ~chain_of ~funcs ~hint =
  {
    params;
    threshold;
    policy = config.policy;
    rounding = config.size_rounding;
    chain_of;
    funcs;
    mchains = Array.make 4096 memo_empty;
    msizes = Array.make 4096 0;
    mids = Array.make 4096 0;
    mcap = 4096;
    mcount = 0;
    st_chain = Array.make 256 0;
    st_size = Array.make 256 0;
    st_key = Array.make 256 0;
    st_obs = Array.make 256 0;
    st_wobs = Array.make 256 0;
    st_wshort = Array.make 256 0;
    st_streak = Array.make 256 0;
    st_promoted = Bytes.make 256 '\000';
    st_ring = Array.make 256 Bytes.empty;
    st_rpos = Array.make 256 0;
    n_sites = 0;
    obj_site = Lp_trace.Grow.create ~default:(-1) hint;
  }

let slot_for chains sizes mask chain size =
  let h = ((chain * 0x9E3779B1) lxor (size * 0x85EBCA77)) land mask in
  let i = ref h in
  while
    let c = Array.unsafe_get chains !i in
    c <> memo_empty && not (c = chain && Array.unsafe_get sizes !i = size)
  do
    i := (!i + 1) land mask
  done;
  !i

let memo_grow st =
  let cap' = st.mcap * 2 in
  let chains' = Array.make cap' memo_empty in
  let sizes' = Array.make cap' 0 in
  let ids' = Array.make cap' 0 in
  let mask' = cap' - 1 in
  for i = 0 to st.mcap - 1 do
    let c = Array.unsafe_get st.mchains i in
    if c <> memo_empty then begin
      let j = slot_for chains' sizes' mask' c (Array.unsafe_get st.msizes i) in
      chains'.(j) <- c;
      sizes'.(j) <- Array.unsafe_get st.msizes i;
      ids'.(j) <- Array.unsafe_get st.mids i
    end
  done;
  st.mcap <- cap';
  st.mchains <- chains';
  st.msizes <- sizes';
  st.mids <- ids'

let grow_int a n =
  let a' = Array.make (2 * Array.length a) 0 in
  Array.blit a 0 a' 0 n;
  a'

let states_grow st =
  let n = st.n_sites in
  st.st_chain <- grow_int st.st_chain n;
  st.st_size <- grow_int st.st_size n;
  st.st_key <- grow_int st.st_key n;
  st.st_obs <- grow_int st.st_obs n;
  st.st_wobs <- grow_int st.st_wobs n;
  st.st_wshort <- grow_int st.st_wshort n;
  st.st_streak <- grow_int st.st_streak n;
  st.st_rpos <- grow_int st.st_rpos n;
  let promoted' = Bytes.make (2 * Bytes.length st.st_promoted) '\000' in
  Bytes.blit st.st_promoted 0 promoted' 0 n;
  st.st_promoted <- promoted';
  let ring' = Array.make (2 * Array.length st.st_ring) Bytes.empty in
  Array.blit st.st_ring 0 ring' 0 n;
  st.st_ring <- ring'

let new_site st chain size key =
  if st.n_sites = Array.length st.st_chain then states_grow st;
  let s = st.n_sites in
  st.st_chain.(s) <- chain;
  st.st_size.(s) <- size;
  st.st_key.(s) <- key;
  st.n_sites <- s + 1;
  s

let rec site_id st chain size key =
  let i = slot_for st.mchains st.msizes (st.mcap - 1) chain size in
  if Array.unsafe_get st.mchains i <> memo_empty then Array.unsafe_get st.mids i
  else if 2 * (st.mcount + 1) > st.mcap then begin
    memo_grow st;
    site_id st chain size key
  end
  else begin
    let s = new_site st chain size key in
    st.mchains.(i) <- chain;
    st.msizes.(i) <- size;
    st.mids.(i) <- s;
    st.mcount <- st.mcount + 1;
    s
  end

let record_outcome st s short =
  st.st_obs.(s) <- st.st_obs.(s) + 1;
  let window = st.params.window in
  if window = 0 then begin
    st.st_wobs.(s) <- st.st_wobs.(s) + 1;
    if short then st.st_wshort.(s) <- st.st_wshort.(s) + 1
  end
  else begin
    let ring =
      let r = Array.unsafe_get st.st_ring s in
      if Bytes.length r > 0 then r
      else begin
        let r = Bytes.make window '\000' in
        st.st_ring.(s) <- r;
        r
      end
    in
    let pos = st.st_rpos.(s) in
    if st.st_wobs.(s) < window then st.st_wobs.(s) <- st.st_wobs.(s) + 1
    else if Bytes.unsafe_get ring pos = '\001' then
      st.st_wshort.(s) <- st.st_wshort.(s) - 1;
    Bytes.unsafe_set ring pos (if short then '\001' else '\000');
    st.st_rpos.(s) <- (pos + 1) mod window;
    if short then st.st_wshort.(s) <- st.st_wshort.(s) + 1
  end;
  if short then st.st_streak.(s) <- 0
  else st.st_streak.(s) <- st.st_streak.(s) + 1;
  if Bytes.unsafe_get st.st_promoted s = '\001' then begin
    if st.st_streak.(s) >= st.params.demote then
      Bytes.unsafe_set st.st_promoted s '\000'
  end
  else if
    st.st_wobs.(s) >= st.params.promote && st.st_wshort.(s) = st.st_wobs.(s)
  then Bytes.unsafe_set st.st_promoted s '\001'

(* The driver consults this at every alloc and realloc.  The object's
   site binding is set at its first consultation — the alloc, mirroring
   where offline training attributes lifetimes — and a later realloc
   consults the resized site's verdict without rebinding the outcome. *)
let online_predicted st ~obj ~size ~chain ~key =
  let s = site_id st chain size key in
  if Lp_trace.Grow.get st.obj_site obj < 0 then
    Lp_trace.Grow.set st.obj_site obj s;
  Bytes.unsafe_get st.st_promoted s = '\001'

let online_outcome st ~obj ~lifetime ~survived =
  let s = Lp_trace.Grow.get st.obj_site obj in
  if s >= 0 then begin
    Lp_trace.Grow.set st.obj_site obj (-1);
    let short = (not survived) && lifetime < st.threshold in
    record_outcome st s short
  end

(* The promoted portable key set, aggregated with {!Predictor.build}'s
   conservative rule: rounding can collapse several raw sites onto one
   portable key, and the key survives only if every contributing site
   (with at least one recorded outcome) is promoted.  Sites that were
   only ever consulted — no outcome yet — do not contribute, matching
   offline training, which never saw them either. *)
let online_snapshot st () =
  let funcs = st.funcs () in
  let portable s =
    let site =
      Lp_callchain.Site.make st.policy
        ~raw_chain:(st.chain_of st.st_chain.(s))
        ~key:st.st_key.(s) ~size:st.st_size.(s)
    in
    match st.policy with
    | Lp_callchain.Site.Encrypted_key ->
        Portable.of_key_site site ~rounding:st.rounding
    | _ -> Portable.of_site funcs ~rounding:st.rounding site
  in
  let keys = Portable.Table.create 256 in
  for s = 0 to st.n_sites - 1 do
    if st.st_obs.(s) > 0 then begin
      let k = portable s in
      if Bytes.get st.st_promoted s = '\001' then begin
        if not (Portable.Table.mem keys k) then Portable.Table.add keys k ()
      end
      else Portable.Table.remove keys k
    end
  done;
  for s = 0 to st.n_sites - 1 do
    if st.st_obs.(s) > 0 && Bytes.get st.st_promoted s <> '\001' then
      Portable.Table.remove keys (portable s)
  done;
  let acc = ref [] in
  Portable.Table.iter (fun k () -> acc := Portable.to_string k :: !acc) keys;
  List.sort String.compare acc.contents

let online_instance ~(params : online_params) ~config ~predict_cost ~chain_of
    ~funcs ~hint =
  let threshold =
    match params.threshold with
    | Some t -> t
    | None -> config.Config.short_lived_threshold
  in
  let st = create_state ~params ~threshold ~config ~chain_of ~funcs ~hint in
  {
    driver =
      {
        Lp_allocsim.Driver.predicted = online_predicted st;
        predict_cost;
        short_threshold = threshold;
        on_outcome = Some (online_outcome st);
      };
    snap = online_snapshot st;
  }

let static_instance ~predicted ~predict_cost p =
  {
    driver =
      {
        Lp_allocsim.Driver.predicted;
        predict_cost;
        short_threshold = Predictor.threshold p;
        on_outcome = None;
      };
    snap = static_snapshot p;
  }

let instance_for_trace ?(pooled = false) t ~predict_cost
    (trace : Lp_trace.Trace.t) =
  match t with
  | Static p ->
      let predicted =
        if pooled then Predictor.for_trace_pooled p trace
        else Predictor.for_trace p trace
      in
      static_instance ~predicted ~predict_cost p
  | Online { params; config } ->
      online_instance ~params ~config ~predict_cost
        ~chain_of:(Lp_trace.Trace.chain_of_alloc trace)
        ~funcs:(fun () -> trace.funcs)
        ~hint:(Lp_trace.Trace.total_objects trace)

let instance_for_source t ~predict_cost (src : Lp_trace.Source.t) =
  match t with
  | Static p ->
      let predicted = Predictor.for_source p src in
      static_instance ~predicted ~predict_cost p
  | Online { params; config } ->
      online_instance ~params ~config ~predict_cost
        ~chain_of:src.Lp_trace.Source.chain ~funcs:src.Lp_trace.Source.funcs
        ~hint:1024
