(** Short-lived-site predictors.

    A predictor is the set of allocation sites whose training objects were
    {e all} short-lived, stored as portable keys so it can be applied to a
    different execution — the "database of allocation sites" the paper
    compiles into the allocation system (§5.1).

    [selection] generalises the paper's all-short rule: the ablation
    benches also build predictors that accept sites with at least a given
    fraction of short-lived training objects, trading error rate for
    coverage (the trade-off §4.1 discusses around "how large should this
    percentage be?"). *)

type selection =
  | All_short  (** the paper's rule *)
  | Fraction of float  (** accept sites with >= this fraction short *)

type t

val build :
  ?selection:selection ->
  config:Config.t ->
  funcs:Lp_callchain.Func.table ->
  Train.site_table ->
  t
(** Select the qualifying sites of a training table, conservatively: when
    rounding collapses several raw sites onto one portable key, the key
    survives only if {e every} contributing site qualifies. *)

val of_keys : ?selection:selection -> config:Config.t -> Portable.t list -> t
(** A predictor over an explicit key set — how a portable model file
    ({!Model}) becomes a live predictor again.  Duplicates are ignored. *)

val size : t -> int
(** Number of accepted keys. *)

val threshold : t -> int
(** The short-lived cutoff (in allocated bytes) the predictor was built
    under — the config's [short_lived_threshold] at {!build} time. *)

val portable_of_site :
  t -> Lp_callchain.Func.table -> Lp_callchain.Site.t -> Portable.t
(** The portable key of a raw site under the predictor's policy and
    rounding ({!Portable.of_key_site} under [Encrypted_key], else
    {!Portable.of_site}). *)

val predicts_site : t -> Lp_callchain.Func.table -> Lp_callchain.Site.t -> bool
val predicts_key : t -> Portable.t -> bool
val iter_keys : t -> (Portable.t -> unit) -> unit

val for_lookup :
  t ->
  chain_of:(int -> Lp_callchain.Chain.t) ->
  funcs:(unit -> Lp_callchain.Func.table) ->
  obj:int ->
  size:int ->
  chain:int ->
  key:int ->
  bool
(** A memoizing lookup over any chain-id resolver: each interned
    (chain, size) pair is resolved once, so the simulation driver's
    per-allocation test is a hash-table probe — mirroring the small site
    hash table of §5.1.  [funcs] is a thunk because a generator source's
    table only exists once streaming has started. *)

val for_trace :
  t ->
  Lp_trace.Trace.t ->
  obj:int ->
  size:int ->
  chain:int ->
  key:int ->
  bool
(** {!for_lookup} over a materialized trace's interned tables. *)

val for_source :
  t ->
  Lp_trace.Source.t ->
  obj:int ->
  size:int ->
  chain:int ->
  key:int ->
  bool
(** {!for_lookup} over a streaming source's incremental tables.  Sound
    mid-stream by the source interning contract: any chain id an event
    carries is already resolvable. *)

val for_trace_pooled :
  t ->
  Lp_trace.Trace.t ->
  obj:int ->
  size:int ->
  chain:int ->
  key:int ->
  bool
(** {!for_trace} over the calling domain's pooled memo table, reset
    instead of reallocated — the candidate-sweep fast path.  Verdicts are
    identical to {!for_trace}.  The returned lookup is only valid until
    the next [for_trace_pooled] call on the same domain (each call resets
    the shared memo); don't hold one across replays.  Each reset bumps
    the ["predictor.memo_reuses"] counter of {!Lp_obs.Timings} when
    timings are enabled. *)
