(** Data-parallel replay of one sharded ([.lpt] v3) trace.

    [Parallel.map_chunks] fans the trace's chunk index over the domain
    pool as balanced contiguous ranges; each worker replays its range
    with the fold's range variant (seeded from the range's entry
    counters and carry-in set) and the deterministic merges reproduce
    the sequential streaming folds exactly — same values, same
    histogram state, same table insertion order.  [LPALLOC_DOMAINS=1]
    degrades to a sequential chunk walk with identical results, which is
    how the CI gate checks byte-identical JSON at 1 and 4 domains. *)

let map_ranges ?domains (sh : Lp_trace.Sharded.t) f =
  Parallel.map_chunks ?domains ~n_chunks:(Lp_trace.Sharded.n_chunks sh)
    (fun ~first ~count -> f (Lp_trace.Sharded.range sh ~first ~count))

let stats ?domains sh =
  Lp_trace.Stats.merge_ranges sh
    (map_ranges ?domains sh Lp_trace.Stats.compute_range)

let lifetimes ?domains ~threshold sh =
  Lp_trace.Lifetimes.merge_summaries ~threshold
    (map_ranges ?domains sh (fun rg -> Lp_trace.Lifetimes.fold_range rg))

let train ?domains ?config sh =
  Train.merge_ranges ?config sh
    (map_ranges ?domains sh (fun rg -> Train.collect_range ?config rg))
