(** Allocator design-space search — the engine behind [lpalloc tune].

    The paper evaluates a handful of hand-picked allocator configurations
    (length-4 chains, a 32 KB short-lived threshold, 16 x 4 KB arenas).
    This module searches the space instead: a deterministic seeded grid of
    backend/parameter combinations plus an evolutionary refinement loop,
    every candidate replayed against one shared prepared trace
    ({!Lp_allocsim.Driver.prepare} once, {!Lp_allocsim.Driver.run_prepared}
    per candidate) in parallel on the {!Parallel} domain pool.

    Determinism contract: for a fixed seed the full result list, the
    Pareto front and the baselines are identical regardless of the domain
    count — the PRNG is consumed only on the sequential search path, and
    {!Parallel.map} preserves order.  The golden test replays a tune run
    at 1 and 4 domains and byte-compares the JSON. *)

(** Backend parameters under search — mirrors the
    {!Lp_allocsim.Registry.backend_of_spec} grammar. *)
type backend_params =
  | Freelist of { best : bool; sbrk : int }
      (** first-fit / best-fit with an sbrk chunk size *)
  | Bsd  (** no knobs *)
  | Segfit of { slab : int array }  (** slab class ladder *)
  | Arena of { n : int; chunk : int; fallback : string }

type candidate = {
  backend : backend_params;
  depth : int;
      (** predictor chain depth: 0 = complete cycle-eliminated chain,
          1-8 = last-N callers.  Meaningful only for predicting backends. *)
  threshold : int;  (** short-lived threshold in bytes *)
}

val normalize : candidate -> candidate
(** Pin the prediction knobs of non-predicting backends to their defaults
    so equivalent candidates collapse onto one dedup {!key}. *)

val spec_string : candidate -> string
(** The candidate's backend as a registry spec, canonical form (defaults
    dropped) — accepted by {!Lp_allocsim.Registry.backend_of_spec}. *)

val key : candidate -> string
(** Dedup identity: spec string plus chain depth and threshold. *)

val label : candidate -> string
(** Human-readable one-liner ([spec chain=N thr=B] for predicting
    backends, plain spec otherwise). *)

val uses_prediction : candidate -> bool

type result = {
  candidate : candidate;
  metrics : Lp_allocsim.Metrics.t;
  instructions : int;
      (** total simulated alloc+free instruction count (the per-op float
          averages of {!Lp_allocsim.Metrics.t} folded back to exact
          totals) *)
  max_heap : int;  (** heap high-water mark, bytes *)
}

val pareto_front : result list -> result list
(** The non-dominated frontier minimizing (instructions, max_heap),
    instructions ascending.  Deterministic: ties are broken by candidate
    {!key}. *)

type options = {
  seed : int;  (** PRNG seed; fixes the whole search *)
  generations : int;  (** evolutionary refinement rounds *)
  population : int;  (** fresh mutants per round *)
  max_candidates : int;  (** hard cap on total evaluations *)
}

val default_options : options
(** [{seed = 42; generations = 4; population = 16; max_candidates = 512}]
    — the 46-point grid plus 4 x 16 mutants, about 110 candidates. *)

val grid_candidates : unit -> candidate list
(** The deterministic seed grid: the five plain backends, sbrk and slab
    ladder variants, the arena geometry cross product, a chain-depth
    sweep 1-8 and a short-lived-threshold sweep. *)

type outcome = {
  workload : string;
  seed : int;
  results : result list;  (** every candidate in evaluation order *)
  pareto : result list;
  baselines : (string * result) list;
      (** the paper's fixed points: first-fit, bsd, arena at length-4
          pricing, arena at CCE pricing *)
}

val search :
  ?options:options ->
  ?workload:string ->
  train:Lp_trace.Trace.t ->
  test:Lp_trace.Trace.t ->
  unit ->
  outcome
(** Run the full search: evaluate the grid, then [generations] rounds of
    mutations of the current Pareto front, deduplicated by {!key}.  The
    test trace is prepared once; predictors are trained once per distinct
    (threshold, depth) pair and shared across candidates.  The search
    prices prediction at the paper's length-4 cost; the CCE pricing
    appears in [baselines]. *)

val json_of_result : result -> Lp_report.Json.t

val json_of_outcome : ?engine:(string * int) list -> outcome -> Lp_report.Json.t
(** [engine] attaches engine counters (decodes, validations) as an extra
    object — the CLI passes them; the determinism test omits them since
    counter totals may legitimately differ run-to-run. *)

val table_of_outcome : outcome -> string
(** Fixed-width text table: the Pareto points then the baselines. *)

val markdown_header : string
(** Header of the best-config markdown table committed in EXPERIMENTS.md. *)

val markdown_rows : outcome -> string
(** Rows for one workload: tuned min-instructions, tuned min-heap, then
    the four baselines.  A drift test regenerates these rows and checks
    EXPERIMENTS.md still contains them. *)
