(** A small fixed pool of OCaml 5 domains for the simulation fan-out.

    Each [Driver.run] owns its private allocator state and only reads the
    (immutable after construction) trace and predictor tables, so the four
    allocator simulations of a [Simulate.run] — and independent per-program
    jobs in the bench harness — can execute concurrently.

    The pool size defaults to [min 8 (Domain.recommended_domain_count ())]
    and can be forced with {!set_domains} or the [LPALLOC_DOMAINS]
    environment variable ([LPALLOC_DOMAINS=1] runs everything
    sequentially, which is how the parallel speedup is measured).  Calls
    from inside a pool worker run sequentially rather than spawning
    nested domains, so parallelism composes without oversubscription. *)

let forced : int option ref = ref None

let set_domains n =
  if n < 1 then invalid_arg "Parallel.set_domains: need at least one domain";
  forced := Some n

(* force a pool size for the duration of [f] (tests, the CLI's --domains) *)
let with_domains n f =
  if n < 1 then invalid_arg "Parallel.with_domains: need at least one domain";
  let saved = !forced in
  forced := Some n;
  Fun.protect ~finally:(fun () -> forced := saved) f

(* [LPALLOC_DOMAINS] parsing is shared between the lazy lookup below and
   the CLIs' up-front validation: a bad value should be a clean usage
   error at startup naming what was set, not an [Invalid_argument] from
   deep inside the first parallel replay. *)
let parse_env_value s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Ok n
  | Some _ | None ->
      Error
        (Printf.sprintf "LPALLOC_DOMAINS must be a positive integer, got %S" s)

let check_env () =
  match Sys.getenv_opt "LPALLOC_DOMAINS" with
  | None -> Ok ()
  | Some s -> (
      match parse_env_value s with Ok _ -> Ok () | Error msg -> Error msg)

let default_domains () =
  match !forced with
  | Some n -> n
  | None -> (
      match Sys.getenv_opt "LPALLOC_DOMAINS" with
      | Some s -> (
          match parse_env_value s with
          | Ok n -> n
          | Error msg -> invalid_arg msg)
      | None -> max 1 (min 8 (Domain.recommended_domain_count ())))

(* true inside a pool worker: nested maps degrade to sequential execution *)
let inside_pool = Domain.DLS.new_key (fun () -> false)

let map ?domains f xs =
  let jobs = Array.of_list xs in
  let n = Array.length jobs in
  let wanted = min n (match domains with Some d -> max 1 d | None -> default_domains ()) in
  if n = 0 then []
  else if wanted <= 1 || Domain.DLS.get inside_pool then List.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      Domain.DLS.set inside_pool true;
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
             Some
               (match f jobs.(i) with
               | v -> Ok v
               | exception e -> Error (e, Printexc.get_raw_backtrace ())));
          loop ()
        end
      in
      loop ();
      Domain.DLS.set inside_pool false
    in
    let helpers = Array.init (wanted - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join helpers;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
  end

let all ?domains thunks = map ?domains (fun f -> f ()) thunks

(* Split [n_chunks] contiguous chunks into at most [domains] balanced
   ranges and run [f ~first ~count] over them concurrently.  Results come
   back in range order, so a deterministic merge over them reproduces the
   sequential left-to-right fold exactly — this is the fan-out under the
   sharded (.lpt v3) single-trace replay. *)
let map_chunks ?domains ~n_chunks f =
  if n_chunks < 0 then invalid_arg "Parallel.map_chunks: negative chunk count";
  let wanted =
    max 1 (match domains with Some d -> max 1 d | None -> default_domains ())
  in
  let k = max 1 (min wanted n_chunks) in
  let base = n_chunks / k and extra = n_chunks mod k in
  let ranges =
    List.init (min k n_chunks) (fun i ->
        let first = (i * base) + min i extra in
        let count = base + if i < extra then 1 else 0 in
        (first, count))
  in
  map ?domains (fun (first, count) -> f ~first ~count) ranges

(* Streaming fan-out: each job opens its own cursor via [make] at the
   moment it is scheduled onto a domain, so concurrent jobs never share
   mutable stream state and per-domain memory is bounded by one stream —
   a bounded re-read per domain instead of one shared materialized trace.
   Jobs are deterministic given a fresh cursor, so results are identical
   to running them sequentially in list order.

   The [Gc.full_major] before each cursor open keeps the *sequential*
   (one-domain) fan-out's high-water mark one-job-sized: OCaml's
   [top_heap_words] is monotonic, so without it each job's replay arrays
   would stack on the previous job's uncollected garbage and the
   bounded-memory guarantee of streaming would erode with job count.
   It must stay conditional on actually running sequentially: in the
   multi-domain path a full major per job is a stop-the-world barrier
   that serializes the whole pool. *)
let map_sources ?domains make fs =
  let wanted =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  let sequential =
    wanted <= 1 || List.compare_length_with fs 1 <= 0
    || Domain.DLS.get inside_pool
  in
  map ?domains
    (fun f ->
      if sequential then Gc.full_major ();
      f (make ()))
    fs
