(** Training: fold a trace into a site table.

    For each allocation, derive the site key under the configured policy
    (complete cycle-eliminated chain + size, length-N sub-chain + size,
    size only, or encryption key + size) and fold the object's lifetime
    into that site's statistics. *)

module Site = Lp_callchain.Site

type site_table = Site_stats.t Site.Table.t

let site_of_alloc (trace : Lp_trace.Trace.t) ~policy ~chain ~key ~size =
  let raw_chain = Lp_trace.Trace.chain_of_alloc trace chain in
  Site.make policy ~raw_chain ~key ~size

let collect ?(config = Config.default) (trace : Lp_trace.Trace.t) : site_table =
  let lifetimes = Lp_trace.Lifetimes.compute trace in
  let table : site_table = Site.Table.create 256 in
  Lp_trace.Trace.iter_allocs trace (fun ~obj ~size ~chain ~key ~tag:_ ->
      let site = site_of_alloc trace ~policy:config.policy ~chain ~key ~size in
      let stats =
        match Site.Table.find_opt table site with
        | Some s -> s
        | None ->
            let s = Site_stats.create () in
            Site.Table.add table site s;
            s
      in
      let lifetime = lifetimes.lifetime.(obj) in
      let survived = lifetimes.survived.(obj) in
      let short =
        Lp_trace.Lifetimes.is_short_lived lifetimes
          ~threshold:config.short_lived_threshold obj
      in
      Site_stats.observe stats ~size ~lifetime ~survived ~short
        ~refs:trace.obj_refs.(obj));
  table

type streamed = {
  table : site_table;
  end_clock : int;  (** total bytes allocated — [Trace.total_bytes] of the stream *)
  n_objects : int;
}

(* Streaming training: one pass over a source, never materializing the
   event array.  Per-object lifetime state and one record per allocation
   (site-stats pointer, object, size) are retained — memory scales with
   the allocation count, not the event count — and the deferred
   observation replays in allocation-event order, so the resulting table
   (entries, insertion order, per-site statistics) is identical to
   [collect] on the materialized trace. *)
let collect_source ?(config = Config.default) (src : Lp_trace.Source.t) :
    streamed =
  let table : site_table = Site.Table.create 256 in
  let dummy = Site_stats.create () in
  let a_stats = ref (Array.make 1024 dummy) in
  let n_allocs = ref 0 in
  let push_stats s =
    if !n_allocs = Array.length !a_stats then begin
      let grown = Array.make (2 * !n_allocs) dummy in
      Array.blit !a_stats 0 grown 0 !n_allocs;
      a_stats := grown
    end;
    !a_stats.(!n_allocs) <- s;
    incr n_allocs
  in
  let hint =
    match src.Lp_trace.Source.n_objects_hint with Some n -> n | None -> 1024
  in
  let a_obj = Lp_trace.Grow.create 1024 in
  let a_size = Lp_trace.Grow.create 1024 in
  let birth = Lp_trace.Grow.create hint in
  let lifetime = Lp_trace.Grow.create hint in
  let survived = Lp_trace.Grow.create ~default:1 hint in
  let clock = ref 0 in
  let rec loop () =
    match Lp_trace.Source.next src with
    | None -> ()
    | Some ev ->
        (match ev with
        | Lp_trace.Event.Alloc { obj; size; chain; key; _ } ->
            let site =
              Site.make config.policy
                ~raw_chain:(src.Lp_trace.Source.chain chain)
                ~key ~size
            in
            let stats =
              match Site.Table.find_opt table site with
              | Some s -> s
              | None ->
                  let s = Site_stats.create () in
                  Site.Table.add table site s;
                  s
            in
            push_stats stats;
            Lp_trace.Grow.push a_obj obj;
            Lp_trace.Grow.push a_size size;
            Lp_trace.Grow.set birth obj !clock;
            clock := !clock + size
        | Lp_trace.Event.Free { obj; _ } ->
            Lp_trace.Grow.set lifetime obj
              (!clock - Lp_trace.Grow.get birth obj);
            Lp_trace.Grow.set survived obj 0
        | Lp_trace.Event.Realloc { old_size; new_size; _ } ->
            (* training observes sites at allocation only; a resize just
               advances the clock, like the lifetime folds *)
            clock := !clock + max 0 (new_size - old_size)
        | Lp_trace.Event.Touch _ -> ());
        loop ()
  in
  loop ();
  let end_clock = !clock in
  for i = 0 to !n_allocs - 1 do
    let obj = Lp_trace.Grow.get a_obj i in
    let size = Lp_trace.Grow.get a_size i in
    let surv = Lp_trace.Grow.get survived obj = 1 in
    let lt =
      if surv then end_clock - Lp_trace.Grow.get birth obj
      else Lp_trace.Grow.get lifetime obj
    in
    let short = (not surv) && lt < config.short_lived_threshold in
    Site_stats.observe !a_stats.(i) ~size ~lifetime:lt ~survived:surv ~short
      ~refs:(src.Lp_trace.Source.refs_of obj)
  done;
  {
    table;
    end_clock;
    n_objects = src.Lp_trace.Source.n_objects_now ();
  }

(* Sharded training: each range derives the site of its allocations —
   the expensive per-event work, [Site.make] hashes a call chain — inside
   the parallel section, riding on [Lifetimes.fold_range] for the
   lifetime state.  The merge builds the table in global allocation
   order, so entries, insertion order and per-site statistics are
   identical to [collect_source] over the whole stream. *)
type range_collected = {
  rc_sites : Site.t array;  (** one per allocation, range event order *)
  rc_fold : Lp_trace.Lifetimes.range_fold;
}

let collect_range ?(config = Config.default) (rg : Lp_trace.Sharded.range) =
  let sites = ref [] in
  let fold =
    Lp_trace.Lifetimes.fold_range
      ~on_alloc:(fun src ~size ~chain ~key ->
        sites :=
          Site.make config.policy
            ~raw_chain:(src.Lp_trace.Source.chain chain)
            ~key ~size
          :: !sites)
      rg
  in
  { rc_sites = Array.of_list (List.rev !sites); rc_fold = fold }

let merge_ranges ?(config = Config.default) (sh : Lp_trace.Sharded.t) parts :
    streamed =
  let hdr = Lp_trace.Sharded.header sh in
  let resolved =
    Lp_trace.Lifetimes.resolve (List.map (fun p -> p.rc_fold) parts)
  in
  let table : site_table = Site.Table.create 256 in
  List.iter
    (fun p ->
      Array.iteri
        (fun i site ->
          let obj = p.rc_fold.Lp_trace.Lifetimes.rf_a_obj.(i) in
          let size = p.rc_fold.Lp_trace.Lifetimes.rf_a_size.(i) in
          let stats =
            match Site.Table.find_opt table site with
            | Some s -> s
            | None ->
                let s = Site_stats.create () in
                Site.Table.add table site s;
                s
          in
          let surv = Lp_trace.Lifetimes.resolved_survived resolved obj in
          let lt = Lp_trace.Lifetimes.resolved_lifetime resolved obj in
          let short = (not surv) && lt < config.short_lived_threshold in
          Site_stats.observe stats ~size ~lifetime:lt ~survived:surv ~short
            ~refs:hdr.Lp_trace.Binio.obj_refs.(obj))
        p.rc_sites)
    parts;
  {
    table;
    end_clock = Lp_trace.Lifetimes.resolved_end_clock resolved;
    n_objects = hdr.Lp_trace.Binio.n_objects;
  }

let total_sites (table : site_table) = Site.Table.length table

let fold table init f = Site.Table.fold f table init
