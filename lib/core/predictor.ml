(** Short-lived-site predictors.

    A predictor is the set of allocation sites whose training objects were
    {e all} short-lived, stored as portable keys so it can be applied to a
    different execution — the "database of allocation sites" the paper
    compiles into the allocation system (§5.1).

    [selection] generalises the paper's all-short rule: the ablation
    benches also build predictors that accept sites with at least a given
    fraction of short-lived training objects, trading error rate for
    coverage (the trade-off §4.1 discusses around "how large should this
    percentage be?"). *)

type selection =
  | All_short  (** the paper's rule *)
  | Fraction of float  (** accept sites with >= this fraction short *)

type t = {
  keys : unit Portable.Table.t;
  policy : Lp_callchain.Site.policy;
  rounding : int;
  threshold : int;
  selection : selection;
}

let portable_of_site t funcs site =
  match t.policy with
  | Lp_callchain.Site.Encrypted_key -> Portable.of_key_site site ~rounding:t.rounding
  | _ -> Portable.of_site funcs ~rounding:t.rounding site

let build ?(selection = All_short) ~(config : Config.t) ~funcs
    (table : Train.site_table) =
  let t =
    {
      keys = Portable.Table.create 256;
      policy = config.policy;
      rounding = config.size_rounding;
      threshold = config.short_lived_threshold;
      selection;
    }
  in
  Lp_callchain.Site.Table.iter
    (fun site stats ->
      let accept =
        match selection with
        | All_short -> Site_stats.all_short stats
        | Fraction f -> stats.Site_stats.count > 0 && Site_stats.short_fraction stats >= f
      in
      (* Distinct sites can collapse onto one portable key (rounding); the
         conservative rule keeps a key only if every contributing site
         qualifies, so a later non-qualifying site must evict the key. *)
      let key = portable_of_site t funcs site in
      if accept then begin
        if not (Portable.Table.mem t.keys key) then Portable.Table.add t.keys key ()
      end
      else Portable.Table.remove t.keys key)
    table;
  (* second pass: re-evict keys that a non-qualifying site shares, since
     iteration order above may have added after removal *)
  Lp_callchain.Site.Table.iter
    (fun site stats ->
      let accept =
        match selection with
        | All_short -> Site_stats.all_short stats
        | Fraction f -> stats.Site_stats.count > 0 && Site_stats.short_fraction stats >= f
      in
      if not accept then Portable.Table.remove t.keys (portable_of_site t funcs site))
    table;
  t

(* Rebuild a predictor from an explicit key set — the path a portable
   model file takes back into a live predictor. *)
let of_keys ?(selection = All_short) ~(config : Config.t) keys =
  let t =
    {
      keys = Portable.Table.create (max 16 (List.length keys));
      policy = config.policy;
      rounding = config.size_rounding;
      threshold = config.short_lived_threshold;
      selection;
    }
  in
  List.iter
    (fun k -> if not (Portable.Table.mem t.keys k) then Portable.Table.add t.keys k ())
    keys;
  t

let size t = Portable.Table.length t.keys
let threshold t = t.threshold

let predicts_site t funcs site = Portable.Table.mem t.keys (portable_of_site t funcs site)

let predicts_key t key = Portable.Table.mem t.keys key

let iter_keys t f = Portable.Table.iter (fun k () -> f k) t.keys

(* A fast per-trace lookup: resolves each interned (chain, size) pair once
   and memoizes, so the simulation driver's per-allocation test is a
   hash-table probe — mirroring the small site hash table of §5.1.

   The memo is a hand-rolled open-addressing table over parallel int
   arrays rather than a [Hashtbl] keyed by an [(int * int)] tuple: the
   replay driver calls this once per allocation, and the tuple key plus
   the [find_opt] option box cost two minor allocations and a polymorphic
   hash on every probe.  This probe allocates nothing.

   The table lives in a [memo] record so a candidate sweep can pool it:
   resetting (one [Array.fill]) is far cheaper than reallocating and
   re-zeroing fresh arrays per replay. *)

let memo_empty = min_int

type memo = {
  mutable chains : int array;
  mutable sizes : int array;
  mutable verdicts : Bytes.t;
  mutable cap : int;  (* power of two *)
  mutable count : int;
}

let create_memo () =
  {
    chains = Array.make 4096 memo_empty;
    sizes = Array.make 4096 0;
    verdicts = Bytes.make 4096 '\000';
    cap = 4096;
    count = 0;
  }

let reset_memo m =
  (* stale sizes/verdicts are unreachable once every chain slot is empty *)
  Array.fill m.chains 0 m.cap memo_empty;
  m.count <- 0

let slot_for chains sizes mask chain size =
  let h = ((chain * 0x9E3779B1) lxor (size * 0x85EBCA77)) land mask in
  let i = ref h in
  while
    let c = Array.unsafe_get chains !i in
    c <> memo_empty && not (c = chain && Array.unsafe_get sizes !i = size)
  do
    i := (!i + 1) land mask
  done;
  !i

let memo_grow m =
  let cap' = m.cap * 2 in
  let chains' = Array.make cap' memo_empty in
  let sizes' = Array.make cap' 0 in
  let verdicts' = Bytes.make cap' '\000' in
  let mask' = cap' - 1 in
  for i = 0 to m.cap - 1 do
    let c = Array.unsafe_get m.chains i in
    if c <> memo_empty then begin
      let j = slot_for chains' sizes' mask' c (Array.unsafe_get m.sizes i) in
      chains'.(j) <- c;
      sizes'.(j) <- Array.unsafe_get m.sizes i;
      Bytes.unsafe_set verdicts' j (Bytes.unsafe_get m.verdicts i)
    end
  done;
  m.cap <- cap';
  m.chains <- chains';
  m.sizes <- sizes';
  m.verdicts <- verdicts'

let for_lookup_in m t ~chain_of ~funcs =
  fun ~obj:_ ~size ~chain ~key ->
    let i = slot_for m.chains m.sizes (m.cap - 1) chain size in
    if Array.unsafe_get m.chains i <> memo_empty then
      Bytes.unsafe_get m.verdicts i = '\001'
    else begin
      let site =
        Lp_callchain.Site.make t.policy ~raw_chain:(chain_of chain) ~key ~size
      in
      let hit = predicts_site t (funcs ()) site in
      (* keep the load factor below 1/2 so probe chains stay short *)
      if 2 * (m.count + 1) > m.cap then memo_grow m;
      let i = slot_for m.chains m.sizes (m.cap - 1) chain size in
      m.chains.(i) <- chain;
      m.sizes.(i) <- size;
      Bytes.unsafe_set m.verdicts i (if hit then '\001' else '\000');
      m.count <- m.count + 1;
      hit
    end

let for_lookup t ~chain_of ~funcs = for_lookup_in (create_memo ()) t ~chain_of ~funcs

let for_trace t (trace : Lp_trace.Trace.t) =
  for_lookup t
    ~chain_of:(Lp_trace.Trace.chain_of_alloc trace)
    ~funcs:(fun () -> trace.funcs)

let for_source t (src : Lp_trace.Source.t) =
  for_lookup t ~chain_of:src.Lp_trace.Source.chain ~funcs:src.Lp_trace.Source.funcs

(* one pooled memo per domain; [for_trace_pooled] resets it instead of
   allocating, so a candidate sweep's per-replay predictor state is O(1)
   allocation after warm-up *)
let memo_key = Domain.DLS.new_key create_memo

let for_trace_pooled t (trace : Lp_trace.Trace.t) =
  let m = Domain.DLS.get memo_key in
  reset_memo m;
  Lp_obs.Timings.count "predictor.memo_reuses" 1;
  for_lookup_in m t
    ~chain_of:(Lp_trace.Trace.chain_of_alloc trace)
    ~funcs:(fun () -> trace.funcs)
