(** Short-lived-site predictors.

    A predictor is the set of allocation sites whose training objects were
    {e all} short-lived, stored as portable keys so it can be applied to a
    different execution — the "database of allocation sites" the paper
    compiles into the allocation system (§5.1).

    [selection] generalises the paper's all-short rule: the ablation
    benches also build predictors that accept sites with at least a given
    fraction of short-lived training objects, trading error rate for
    coverage (the trade-off §4.1 discusses around "how large should this
    percentage be?"). *)

type selection =
  | All_short  (** the paper's rule *)
  | Fraction of float  (** accept sites with >= this fraction short *)

type t = {
  keys : unit Portable.Table.t;
  policy : Lp_callchain.Site.policy;
  rounding : int;
  threshold : int;
  selection : selection;
}

let portable_of_site t funcs site =
  match t.policy with
  | Lp_callchain.Site.Encrypted_key -> Portable.of_key_site site ~rounding:t.rounding
  | _ -> Portable.of_site funcs ~rounding:t.rounding site

let build ?(selection = All_short) ~(config : Config.t) ~funcs
    (table : Train.site_table) =
  let t =
    {
      keys = Portable.Table.create 256;
      policy = config.policy;
      rounding = config.size_rounding;
      threshold = config.short_lived_threshold;
      selection;
    }
  in
  Lp_callchain.Site.Table.iter
    (fun site stats ->
      let accept =
        match selection with
        | All_short -> Site_stats.all_short stats
        | Fraction f -> stats.Site_stats.count > 0 && Site_stats.short_fraction stats >= f
      in
      (* Distinct sites can collapse onto one portable key (rounding); the
         conservative rule keeps a key only if every contributing site
         qualifies, so a later non-qualifying site must evict the key. *)
      let key = portable_of_site t funcs site in
      if accept then begin
        if not (Portable.Table.mem t.keys key) then Portable.Table.add t.keys key ()
      end
      else Portable.Table.remove t.keys key)
    table;
  (* second pass: re-evict keys that a non-qualifying site shares, since
     iteration order above may have added after removal *)
  Lp_callchain.Site.Table.iter
    (fun site stats ->
      let accept =
        match selection with
        | All_short -> Site_stats.all_short stats
        | Fraction f -> stats.Site_stats.count > 0 && Site_stats.short_fraction stats >= f
      in
      if not accept then Portable.Table.remove t.keys (portable_of_site t funcs site))
    table;
  t

(* Rebuild a predictor from an explicit key set — the path a portable
   model file takes back into a live predictor. *)
let of_keys ?(selection = All_short) ~(config : Config.t) keys =
  let t =
    {
      keys = Portable.Table.create (max 16 (List.length keys));
      policy = config.policy;
      rounding = config.size_rounding;
      threshold = config.short_lived_threshold;
      selection;
    }
  in
  List.iter
    (fun k -> if not (Portable.Table.mem t.keys k) then Portable.Table.add t.keys k ())
    keys;
  t

let size t = Portable.Table.length t.keys

let predicts_site t funcs site = Portable.Table.mem t.keys (portable_of_site t funcs site)

let predicts_key t key = Portable.Table.mem t.keys key

let iter_keys t f = Portable.Table.iter (fun k () -> f k) t.keys

(* A fast per-trace lookup: resolves each interned (chain, size) pair once
   and memoizes, so the simulation driver's per-allocation test is a
   hash-table probe — mirroring the small site hash table of §5.1. *)
let for_trace t (trace : Lp_trace.Trace.t) =
  let memo : (int * int, bool) Hashtbl.t = Hashtbl.create 1024 in
  fun ~obj:_ ~size ~chain ~key ->
    match Hashtbl.find_opt memo (chain, size) with
    | Some hit -> hit
    | None ->
        let site =
          Lp_callchain.Site.make t.policy
            ~raw_chain:(Lp_trace.Trace.chain_of_alloc trace chain)
            ~key ~size
        in
        let hit = predicts_site t trace.funcs site in
        Hashtbl.replace memo (chain, size) hit;
        hit
