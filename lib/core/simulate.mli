(** Simulation glue: run a test trace through a set of registry allocators
    with a lifetime oracle ({!Oracle}: the offline-trained database or
    the online adaptive trainer), producing the measurements behind
    Tables 7, 8 and 9.

    The replays are independent — each {!Lp_allocsim.Driver.run} owns its
    allocator state and oracle instance and only reads the trace — so
    they execute concurrently on the {!Parallel} domain pool.
    [Parallel.with_domains 1] (or [LPALLOC_DOMAINS=1]) forces the
    sequential order, which produces bit-identical metrics: parallelism
    only changes scheduling, never results.

    Allocators are named {!Lp_allocsim.Registry} entries.  A backend that
    uses prediction (the arena allocator) expands into two jobs, one per
    prediction pricing: its own name with the fixed length-4 chain cost,
    and ["<name>-cce"] with the amortised call-chain-encryption cost
    (§5.1's two implementation strategies). *)

type t

val default_allocators : string list
(** ["first-fit"; "bsd"; "arena"] — the paper's comparison set. *)

val run :
  ?allocators:string list ->
  ?wrap:(Lp_allocsim.Backend.t -> Lp_allocsim.Backend.t) ->
  config:Config.t ->
  oracle:Oracle.t ->
  test:Lp_trace.Trace.t ->
  unit ->
  t
(** [wrap] interposes on every backend before it is replayed — the hook
    the shadow-heap sanitizer ([Lp_analysis.Sanitize.for_backend]) plugs
    into.  A well-behaved wrapper keeps the backend's name and delegates
    its metrics, so results are keyed and valued identically. *)

val metrics : t -> string -> Lp_allocsim.Metrics.t
(** Result by job name ([Failure] if absent, listing the names present). *)

val names : t -> string list
(** Job names, in replay order. *)

val first_fit : t -> Lp_allocsim.Metrics.t
val bsd : t -> Lp_allocsim.Metrics.t
val arena_len4 : t -> Lp_allocsim.Metrics.t
val arena_cce : t -> Lp_allocsim.Metrics.t

val run_streamed :
  ?allocators:string list ->
  ?wrap:(Lp_allocsim.Backend.t -> Lp_allocsim.Backend.t) ->
  ?decode_ahead:bool ->
  config:Config.t ->
  oracle:Oracle.t ->
  source:(unit -> Lp_trace.Source.t) ->
  unit ->
  t
(** The streaming twin of {!run}: [source] must open a fresh single-shot
    event stream on every call; each replay job opens its own, on the
    domain that runs it, so per-domain memory is bounded by one stream
    and concurrent replays never share a cursor.  Metrics are
    byte-identical to {!run} on the materialized equivalent.  Sources
    that do not declare their call/object totals up front (text,
    generators) cost one extra probe drain for the CCE pricing.

    [decode_ahead] (default false) wraps each job's source in
    {!Lp_trace.Source.decode_ahead}, decoding on a domain that runs
    ahead of the replay; each job then occupies two domains instead of
    one, so it pays off when jobs are few relative to cores. *)

val cce_cost : Lp_trace.Trace.t -> int
(** Per-allocation prediction cost under call-chain encryption, amortised
    over the test trace's call counts. *)

val cce_cost_of : calls:int -> allocs:int -> int
(** {!cce_cost} from explicit totals — the streaming path's form. *)

val arena_with_cost :
  config:Config.t ->
  oracle:Oracle.t ->
  test:Lp_trace.Trace.t ->
  predict_cost:int ->
  Lp_allocsim.Metrics.t
(** One arena replay with an explicit prediction cost — the ablation
    benches sweep this. *)
