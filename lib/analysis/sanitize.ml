open Diagnostic

exception Violation of Diagnostic.t

let rules =
  [
    {
      id = "shadow-overlap";
      default_severity = Error;
      doc = "a newly placed block overlaps a live block";
    };
    {
      id = "shadow-unmapped-free";
      default_severity = Error;
      doc = "a free at an address with no live block";
    };
    {
      id = "shadow-misaligned";
      default_severity = Error;
      doc = "a block address off the required alignment";
    };
    {
      id = "shadow-boundary";
      default_severity = Error;
      doc = "a block straddling the arena/fallback boundary";
    };
  ]

module Shadow = Map.Make (Int)

let wrap ?(alignment = 1) ?boundary (module B : Lp_allocsim.Backend.BACKEND) :
    Lp_allocsim.Backend.t =
  if alignment < 1 then invalid_arg "Sanitize.wrap: alignment must be >= 1";
  (module struct
    type t = {
      inner : B.t;
      mutable shadow : int Shadow.t;  (* block start -> payload size *)
      mutable ops : int;  (* allocs + frees so far, the diagnostic anchor *)
    }

    (* the registry name and every metric delegate to the wrapped backend,
       so a sanitized replay is byte-identical to an unsanitized one *)
    let name = B.name
    let uses_prediction = B.uses_prediction
    let create ?base ?hint () =
      { inner = B.create ?base ?hint (); shadow = Shadow.empty; ops = 0 }

    let violation t ~rule ~site message =
      raise
        (Violation
           (make ~rule ~severity:Error ~event:t.ops ~site
              (Printf.sprintf "%s: %s" B.name message)))

    let range addr size = Printf.sprintf "[%d, %d)" addr (addr + size)

    (* the placement rules a block must satisfy on entry to the shadow
       heap, shared by alloc and the realloc remap *)
    let check_placement t ~addr ~size =
      (if alignment > 1 && addr mod alignment <> 0 then
         violation t ~rule:"shadow-misaligned" ~site:(range addr size)
           (Printf.sprintf "block at %d is not %d-byte aligned" addr alignment));
      (match boundary with
      | Some b when addr < b && addr + size > b ->
          violation t ~rule:"shadow-boundary" ~site:(range addr size)
            (Printf.sprintf "block straddles the arena/fallback boundary at %d" b)
      | _ -> ());
      (* live blocks are pairwise disjoint, so the only candidate overlap
         is the highest-addressed block starting below our end *)
      match Shadow.find_last_opt (fun a -> a < addr + size) t.shadow with
      | Some (a, s) when a + s > addr ->
          violation t ~rule:"shadow-overlap" ~site:(range addr size)
            (Printf.sprintf "new block overlaps live block %s" (range a s))
      | _ -> ()

    let alloc t ~size ~predicted =
      let addr = B.alloc t.inner ~size ~predicted in
      check_placement t ~addr ~size;
      t.shadow <- Shadow.add addr size t.shadow;
      t.ops <- t.ops + 1;
      addr

    let free t addr =
      (match Shadow.find_opt addr t.shadow with
      | None ->
          violation t ~rule:"shadow-unmapped-free" ~site:(string_of_int addr)
            (Printf.sprintf "free at unmapped address %d" addr)
      | Some _ -> t.shadow <- Shadow.remove addr t.shadow);
      t.ops <- t.ops + 1;
      B.free t.inner addr

    (* a native resize remaps the shadow block: unmap the old address
       (flagging a realloc of an unmapped block exactly like a free), let
       the inner backend place it, then re-check and re-map at the
       possibly-moved address.  A [None] inner hook stays [None] so the
       driver's free+alloc fallback flows through the checked [free] and
       [alloc] above. *)
    let realloc =
      match B.realloc with
      | None -> None
      | Some f ->
          Some
            (fun t ~addr ~old_size ~new_size ~predicted ->
              (match Shadow.find_opt addr t.shadow with
              | None ->
                  violation t ~rule:"shadow-unmapped-free"
                    ~site:(string_of_int addr)
                    (Printf.sprintf "realloc at unmapped address %d" addr)
              | Some _ -> t.shadow <- Shadow.remove addr t.shadow);
              let new_addr = f t.inner ~addr ~old_size ~new_size ~predicted in
              check_placement t ~addr:new_addr ~size:new_size;
              t.shadow <- Shadow.add new_addr new_size t.shadow;
              t.ops <- t.ops + 1;
              new_addr)

    let charge_alloc t n = B.charge_alloc t.inner n
    let allocs t = B.allocs t.inner
    let frees t = B.frees t.inner
    let alloc_instr t = B.alloc_instr t.inner
    let free_instr t = B.free_instr t.inner
    let max_heap_size t = B.max_heap_size t.inner
    let extra t = B.extra t.inner

    let check_invariants t =
      B.check_invariants t.inner;
      let shadow_live = Shadow.cardinal t.shadow in
      let backend_live = B.allocs t.inner - B.frees t.inner in
      if shadow_live <> backend_live then
        failwith
          (Printf.sprintf
             "Sanitize: shadow holds %d live blocks but %s counts %d"
             shadow_live B.name backend_live)
  end)

let for_backend ?alignment ?arena_config backend =
  let boundary =
    if Lp_allocsim.Backend.name backend = "arena" then
      let c =
        Option.value arena_config ~default:Lp_allocsim.Arena.default_config
      in
      Some (c.Lp_allocsim.Arena.n_arenas * c.Lp_allocsim.Arena.arena_size)
    else None
  in
  wrap ?alignment ?boundary backend
