(* The audit engine: one abstract-interpretation pass over a trace
   stream, shared by every analysis.

   An analysis is a DOMAIN: it receives every event of one range
   together with the engine's concrete context (event index, clocks,
   live-heap counters, per-object current size and birth chain — all
   seeded from a sharded range's entry counters and carry-in set), and
   folds it into a range summary [token].  [merge] combines the
   summaries of a covering partition, walked in range order, into the
   whole-trace summary.

   The sequential paths are the one-range special case: [run_source]
   replays the whole stream as a single range and merges the singleton,
   so materialized, --stream and --sharded output is byte-identical by
   construction — the same code runs in all three, only the partition
   differs — provided each domain's [merge] reproduces sequential
   accumulation (interning in range order = global first-appearance
   order, deferred observations replayed in global allocation order;
   the same discipline as the stats/lifetimes/train/lint folds). *)

module Source = Lp_trace.Source
module Sharded = Lp_trace.Sharded
module Binio = Lp_trace.Binio
module Event = Lp_trace.Event
module Grow = Lp_trace.Grow
module Site = Lp_callchain.Site
module Chain = Lp_callchain.Chain

type token = ..

type entry = {
  en_first_event : int;
  en_start_clock : int;
  en_live_bytes : int;
  en_live_objs : int;
  en_next_obj : int;
  en_carry : Binio.carry array;
}

let whole =
  {
    en_first_event = 0;
    en_start_clock = 0;
    en_live_bytes = 0;
    en_live_objs = 0;
    en_next_obj = 0;
    en_carry = [||];
  }

let entry_of_range (rg : Sharded.range) =
  {
    en_first_event = rg.Sharded.rg_first_event;
    en_start_clock = rg.Sharded.rg_start_clock;
    en_live_bytes = rg.Sharded.rg_live_bytes;
    en_live_objs = rg.Sharded.rg_live_objs;
    en_next_obj = rg.Sharded.rg_next_obj;
    en_carry = rg.Sharded.rg_carry;
  }

type ctx = {
  mutable cx_event : int;
  mutable cx_clock : int;
  mutable cx_live_bytes : int;
  mutable cx_live_objs : int;
  cx_src : Source.t;
  cx_cur_size : int -> int;
  cx_born : int -> bool;
  cx_birth_chain : int -> int;
}

module type DOMAIN = sig
  val name : string
  val enter : Source.t -> entry -> (ctx -> Event.t -> unit) * (unit -> token)
  val merge : token list -> token
end

(* -- the concrete interpreter ----------------------------------------------------- *)

let run_over analyses (src : Source.t) (en : entry) =
  let hint =
    match src.Source.n_objects_hint with
    | Some n -> max 64 n
    | None -> max 64 (Array.length en.en_carry)
  in
  let cur_size = Grow.create hint in
  let birth_chain = Grow.create ~default:(-1) hint in
  Array.iter
    (fun (cr : Binio.carry) ->
      Grow.set cur_size cr.Binio.cr_obj cr.Binio.cr_size;
      Grow.set birth_chain cr.Binio.cr_obj cr.Binio.cr_alloc_chain)
    en.en_carry;
  let ctx =
    {
      cx_event = en.en_first_event - 1;
      cx_clock = en.en_start_clock;
      cx_live_bytes = en.en_live_bytes;
      cx_live_objs = en.en_live_objs;
      cx_src = src;
      cx_cur_size = (fun obj -> if obj >= 0 then Grow.get cur_size obj else 0);
      cx_born = (fun obj -> obj >= 0 && Grow.get birth_chain obj >= 0);
      cx_birth_chain =
        (fun obj -> if obj >= 0 then Grow.get birth_chain obj else -1);
    }
  in
  let entered =
    List.map (fun (module D : DOMAIN) -> D.enter src en) analyses
  in
  let steps = Array.of_list (List.map fst entered) in
  let n_steps = Array.length steps in
  let rec loop () =
    match Source.next src with
    | None -> ()
    | Some ev ->
        ctx.cx_event <- ctx.cx_event + 1;
        (* domains observe the pre-event context *)
        for i = 0 to n_steps - 1 do
          steps.(i) ctx ev
        done;
        (match ev with
        | Event.Alloc { obj; size; chain; _ } ->
            if obj >= 0 then begin
              Grow.set cur_size obj size;
              Grow.set birth_chain obj chain
            end;
            ctx.cx_clock <- ctx.cx_clock + size;
            ctx.cx_live_bytes <- ctx.cx_live_bytes + size;
            ctx.cx_live_objs <- ctx.cx_live_objs + 1
        | Event.Free { obj; _ } ->
            if obj >= 0 then
              ctx.cx_live_bytes <- ctx.cx_live_bytes - Grow.get cur_size obj;
            ctx.cx_live_objs <- ctx.cx_live_objs - 1
        | Event.Realloc { obj; old_size; new_size; _ } ->
            if obj >= 0 then begin
              ctx.cx_live_bytes <-
                ctx.cx_live_bytes - Grow.get cur_size obj + new_size;
              Grow.set cur_size obj new_size
            end;
            ctx.cx_clock <- ctx.cx_clock + max 0 (new_size - old_size)
        | Event.Touch _ -> ());
        loop ()
  in
  loop ();
  List.map (fun (_, finish) -> finish ()) entered

let run_range ~analyses (rg : Sharded.range) =
  run_over analyses (Sharded.range_source rg) (entry_of_range rg)

let merge_ranges ~analyses per_range =
  List.mapi
    (fun i (module D : DOMAIN) ->
      D.merge (List.map (fun tokens -> List.nth tokens i) per_range))
    analyses

let run_source ~analyses src =
  merge_ranges ~analyses [ run_over analyses src whole ]

let run_sharded ?domains ~analyses (sh : Sharded.t) =
  merge_ranges ~analyses
    (Lifetime.Parallel.map_chunks ?domains ~n_chunks:(Sharded.n_chunks sh)
       (fun ~first ~count -> run_range ~analyses (Sharded.range sh ~first ~count)))

(* -- rendering context for reports ------------------------------------------------ *)

type report_ctx = {
  rp_funcs : Lp_callchain.Func.table;
  rp_chain : int -> Chain.t;
  rp_n_chains : int;
}

let report_ctx_of_source (src : Source.t) =
  {
    rp_funcs = src.Source.funcs ();
    rp_chain = src.Source.chain;
    rp_n_chains = src.Source.n_chains ();
  }

let report_ctx_of_sharded (sh : Sharded.t) =
  let ix = Sharded.index sh in
  {
    rp_funcs = Binio.indexed_funcs ix;
    rp_chain = Binio.indexed_chain ix;
    rp_n_chains = Binio.indexed_n_chains ix;
  }

let chain_depth rctx chain_id =
  if chain_id < 0 || chain_id >= rctx.rp_n_chains then 0
  else Array.length (rctx.rp_chain chain_id)

let render_chain rctx chain_id =
  if chain_id < 0 || chain_id >= rctx.rp_n_chains then
    Printf.sprintf "chain %d" chain_id
  else
    let names = Chain.names rctx.rp_funcs (rctx.rp_chain chain_id) in
    match names with
    | [] -> "<empty chain>"
    | _ ->
        let shown = List.filteri (fun i _ -> i < 3) names in
        String.concat "<-" shown
        ^ if List.length names > 3 then "<-…" else ""

(* -- the shared per-(chain, size) site domain ------------------------------------- *)

module Site_profile = struct
  type config = {
    pc_policy : Site.policy;
    pc_rounding : int;
    pc_threshold : int;
  }

  (* one range's quarter: the local (chain, size) site table in in-range
     first-appearance order, the portable key each maps to, one site id
     per allocation, and the lifetime fold the merge resolves against *)
  type summary = {
    sm_chains : int array;
    sm_sizes : int array;
    sm_keys : Lifetime.Portable.t array;
    sm_first_event : int array;
    sm_alloc_site : int array;
    sm_fold : Lp_trace.Lifetimes.range_fold;
  }

  type site = {
    st_chain : int;
    st_size : int;
    st_key : int;  (** index into [pf_keys] *)
    st_first_event : int;
    mutable st_count : int;
    mutable st_short : int;
    mutable st_survivors : int;
    mutable st_max_lifetime : int;
    mutable st_bytes : int;
    st_hist : Lp_quantile.Histogram.t;
  }

  type key = {
    ky_key : Lifetime.Portable.t;
    ky_first_event : int;
    mutable ky_sites : int list;
    mutable ky_count : int;
    mutable ky_short : int;
    mutable ky_survivors : int;
    mutable ky_max_lifetime : int;
    mutable ky_bytes : int;
  }

  type merged = {
    pf_sites : site array;
    pf_keys : key array;
    pf_end_clock : int;
    pf_threshold : int;
  }

  type token += Summary of summary | Profile of merged

  let portable_of cfg funcs site =
    match cfg.pc_policy with
    | Site.Encrypted_key ->
        Lifetime.Portable.of_key_site site ~rounding:cfg.pc_rounding
    | _ -> Lifetime.Portable.of_site funcs ~rounding:cfg.pc_rounding site

  let enter cfg (src : Source.t) (en : entry) =
    let fold =
      Lp_trace.Lifetimes.Fold.create
        ~hint:(max 64 (Array.length en.en_carry))
        ~start_clock:en.en_start_clock ~carry:en.en_carry ()
    in
    let interned : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
    let n_sites = ref 0 in
    let chains = ref [] and sizes = ref [] in
    let keys = ref [] and firsts = ref [] in
    let alloc_site = Grow.create 1024 in
    let n_allocs = ref 0 in
    let step (ctx : ctx) ev =
      (match ev with
      | Event.Alloc { size; chain; key; _ } ->
          let sid =
            match Hashtbl.find_opt interned (chain, size) with
            | Some id -> id
            | None ->
                let id = !n_sites in
                incr n_sites;
                Hashtbl.add interned (chain, size) id;
                (* corrupt traces can carry unresolvable chain ids; key
                   them like an empty chain rather than crashing *)
                let raw_chain =
                  if chain >= 0 && chain < src.Source.n_chains () then
                    src.Source.chain chain
                  else [||]
                in
                let site =
                  Site.make cfg.pc_policy ~raw_chain ~key ~size
                in
                chains := chain :: !chains;
                sizes := size :: !sizes;
                keys := portable_of cfg (src.Source.funcs ()) site :: !keys;
                firsts := ctx.cx_event :: !firsts;
                id
          in
          Grow.set alloc_site !n_allocs sid;
          incr n_allocs
      | _ -> ());
      Lp_trace.Lifetimes.Fold.step fold ev
    in
    let finish () =
      Summary
        {
          sm_chains = Array.of_list (List.rev !chains);
          sm_sizes = Array.of_list (List.rev !sizes);
          sm_keys = Array.of_list (List.rev !keys);
          sm_first_event = Array.of_list (List.rev !firsts);
          sm_alloc_site =
            Array.init !n_allocs (fun i -> Grow.get alloc_site i);
          sm_fold = Lp_trace.Lifetimes.Fold.finish fold;
        }
    in
    (step, finish)

  let unpack = function
    | Summary s -> s
    | _ -> invalid_arg "Absint.Site_profile: foreign token"

  let merge cfg tokens =
    let sums = List.map unpack tokens in
    let resolved =
      Lp_trace.Lifetimes.resolve (List.map (fun s -> s.sm_fold) sums)
    in
    (* intern sites and keys in range order, which is global
       first-appearance order — the invariant every ordering below
       (diagnostic order, quartile-histogram state) rests on *)
    let site_ids : (int * int, int) Hashtbl.t = Hashtbl.create 1024 in
    let key_ids : int Lifetime.Portable.Table.t =
      Lifetime.Portable.Table.create 256
    in
    let sites_rev = ref [] and n_sites = ref 0 in
    let keys_rev = ref [] and n_keys = ref 0 in
    let maps =
      List.map
        (fun s ->
          Array.mapi
            (fun l chain ->
              let size = s.sm_sizes.(l) in
              match Hashtbl.find_opt site_ids (chain, size) with
              | Some g -> g
              | None ->
                  let g = !n_sites in
                  incr n_sites;
                  Hashtbl.add site_ids (chain, size) g;
                  let portable = s.sm_keys.(l) in
                  let kid =
                    match
                      Lifetime.Portable.Table.find_opt key_ids portable
                    with
                    | Some k -> k
                    | None ->
                        let k = !n_keys in
                        incr n_keys;
                        Lifetime.Portable.Table.add key_ids portable k;
                        keys_rev :=
                          {
                            ky_key = portable;
                            ky_first_event = s.sm_first_event.(l);
                            ky_sites = [];
                            ky_count = 0;
                            ky_short = 0;
                            ky_survivors = 0;
                            ky_max_lifetime = 0;
                            ky_bytes = 0;
                          }
                          :: !keys_rev;
                        k
                  in
                  sites_rev :=
                    {
                      st_chain = chain;
                      st_size = size;
                      st_key = kid;
                      st_first_event = s.sm_first_event.(l);
                      st_count = 0;
                      st_short = 0;
                      st_survivors = 0;
                      st_max_lifetime = 0;
                      st_bytes = 0;
                      st_hist = Lp_quantile.Histogram.create ();
                    }
                    :: !sites_rev;
                  g)
            s.sm_chains)
        sums
    in
    let sites = Array.of_list (List.rev !sites_rev) in
    let keys = Array.of_list (List.rev !keys_rev) in
    (* deferred per-allocation observation, in global allocation order *)
    List.iter2
      (fun s map ->
        Array.iteri
          (fun i sid ->
            let st = sites.(map.(sid)) in
            let obj = s.sm_fold.Lp_trace.Lifetimes.rf_a_obj.(i) in
            let size = s.sm_fold.Lp_trace.Lifetimes.rf_a_size.(i) in
            let surv = Lp_trace.Lifetimes.resolved_survived resolved obj in
            let lt = Lp_trace.Lifetimes.resolved_lifetime resolved obj in
            st.st_count <- st.st_count + 1;
            st.st_bytes <- st.st_bytes + size;
            if (not surv) && lt < cfg.pc_threshold then
              st.st_short <- st.st_short + 1;
            if surv then st.st_survivors <- st.st_survivors + 1;
            if lt > st.st_max_lifetime then st.st_max_lifetime <- lt;
            Lp_quantile.Histogram.observe st.st_hist (float_of_int lt))
          s.sm_alloc_site)
      sums maps;
    (* roll member sites up into their keys, in site order *)
    Array.iteri
      (fun g st ->
        let ky = keys.(st.st_key) in
        ky.ky_sites <- g :: ky.ky_sites;
        ky.ky_count <- ky.ky_count + st.st_count;
        ky.ky_short <- ky.ky_short + st.st_short;
        ky.ky_survivors <- ky.ky_survivors + st.st_survivors;
        ky.ky_max_lifetime <- max ky.ky_max_lifetime st.st_max_lifetime;
        ky.ky_bytes <- ky.ky_bytes + st.st_bytes)
      sites;
    Array.iter (fun ky -> ky.ky_sites <- List.rev ky.ky_sites) keys;
    Profile
      {
        pf_sites = sites;
        pf_keys = keys;
        pf_end_clock = Lp_trace.Lifetimes.resolved_end_clock resolved;
        pf_threshold = cfg.pc_threshold;
      }

  let domain cfg : (module DOMAIN) =
    (module struct
      let name = "site-profile"
      let enter = enter cfg
      let merge = merge cfg
    end)

  let project = function
    | Profile m -> m
    | _ -> invalid_arg "Absint.Site_profile.project: not a profile token"
end
