(** SARIF 2.1.0 rendering of diagnostic lists.

    Maps a pass's rule registry to the driver's reportingDescriptors and
    each {!Diagnostic.t} to a result: severities become SARIF levels
    (info → [note]), the analysed file (when given) becomes each
    result's artifact location, and the trace-internal anchors — event
    index, object id, rendered site — ride in the result's property
    bag.  Single-line output, diffable byte-for-byte like the JSON
    renderer. *)

val to_string :
  tool_name:string ->
  rules:Diagnostic.rule list ->
  ?source:string ->
  Diagnostic.t list ->
  string
(** [to_string ~tool_name ~rules ?source diags] is a complete
    single-line SARIF 2.1.0 log with one run. *)
