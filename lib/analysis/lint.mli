(** The trace linter: one streaming pass over a trace's event stream that
    checks the integrity properties every downstream consumer (training,
    evaluation, allocator replay) silently assumes.

    The paper's whole evaluation is trace-driven, so a single malformed
    event — a double free, a free of a never-born object, a zero-sized
    allocation — corrupts every table computed from the trace.  The replay
    engine ({!Lp_allocsim.Driver.run}) fails hard on some of these, but
    only when (and where) the replay happens; the linter finds all of them
    up front and reports each as a structured {!Diagnostic.t} pointing at
    the exact event.

    Eight rules:

    - [double-free] (error): an object is freed twice.
    - [free-without-alloc] (error): a free precedes the object's
      allocation, or no allocation for the object exists at all.
    - [touch-after-free] (error): a heap reference to an object outside
      its lifetime (after its free, or before its allocation).
    - [size-mismatch-at-free] (error): the declared sized-deallocation
      size on a free event differs from the size at the allocation.
    - [nonpositive-size] (error): an allocation of zero or negative size.
    - [non-monotonic-birth] (error): object ids are the trace's birth
      timestamps (dense, in allocation order); an allocation out of that
      order breaks the bytes-allocated clock.
    - [leaked-at-exit] (warning): an object still live when the trace
      ends.  Survivors are legitimate (the paper treats them as
      long-lived), so this is a warning, not an error.
    - [chain-anomaly] (warning): an allocation whose call-chain is empty
      or absurdly deep — one diagnostic per offending chain, at its first
      use. *)

val rules : Diagnostic.rule list

val default_max_chain_depth : int
(** 256 frames; the traced workloads stay far below this. *)

val run :
  ?only:string list ->
  ?disable:string list ->
  ?max_chain_depth:int ->
  Lp_trace.Trace.t ->
  Diagnostic.t list
(** Lint the trace, in event order.  [only]/[disable] select rules by id
    (see {!Diagnostic.select}).  Equivalent to {!run_source} over
    {!Lp_trace.Source.of_trace}.
    @raise Invalid_argument on an unknown rule id. *)

val run_source :
  ?only:string list ->
  ?disable:string list ->
  ?max_chain_depth:int ->
  Lp_trace.Source.t ->
  Diagnostic.t list
(** Lint a streaming event source in one bounded-memory pass — per-object
    replay state lives in growable arrays sized by the allocation high
    water mark, never the event count.  Diagnostics are identical to
    {!run} on the materialized equivalent.  The source is consumed. *)

(** {1 Sharded linting}

    The linter's state machine restarts mid-trace from a sharded range's
    carry-in set, so one trace lints range-parallel: every in-range
    diagnostic is emitted with the exact absolute indices and messages
    of the sequential pass, and the two cross-range rules stitch at the
    merge — [chain-anomaly] dedups to the globally first use,
    [leaked-at-exit] fires from the overlaid end-of-trace state. *)

type range_report

val run_range :
  ?only:string list ->
  ?disable:string list ->
  ?max_chain_depth:int ->
  Lp_trace.Sharded.range ->
  range_report
(** Lint one chunk range; safe to call on any domain. *)

val merge_ranges :
  ?only:string list ->
  ?disable:string list ->
  Lp_trace.Sharded.t ->
  range_report list ->
  Diagnostic.t list
(** Merge a covering partition's reports (in range order).  Identical to
    {!run_source} over the whole trace. *)

val run_sharded :
  ?domains:int ->
  ?only:string list ->
  ?disable:string list ->
  ?max_chain_depth:int ->
  Lp_trace.Sharded.t ->
  Diagnostic.t list
(** {!run_range} over the domain pool ({!Lifetime.Parallel.map_chunks})
    plus {!merge_ranges}. *)

val clean : Diagnostic.t list -> bool
(** No error-severity diagnostics ([lpalloc lint]'s exit-0 predicate). *)
