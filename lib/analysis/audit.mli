(** The trace/model audit: three static analyses over one {!Absint} pass.

    [lpalloc audit]'s engine.  A single traversal drives two abstract
    domains — the shared per-object/per-site profile
    ({!Absint.Site_profile}) and the live-interval lattice ({!Liveint})
    — and three reports read the merged summaries:

    - {!Collision}: predictor keys shared by distinct call chains whose
      lifetime classes disagree ([chain-collision], warning; hardened to
      [chain-collision-mispredict], error, when the given model predicts
      the key short-lived);
    - {!Coverage}: trace sites the model misses ([coverage-cold-start]),
      model sites the trace never exercises ([coverage-dead-site]),
      sites within a margin of the short-lived cutoff
      ([coverage-threshold-sensitive]), and — under
      [--oracle online] — keys whose member sites are too rare to warm
      the online oracle's promotion window ([coverage-online-cold]);
    - {!Liveint}: the global live-heap peak ([live-peak-pressure]) and
      cross-site overlap hotspots ([live-overlap-hotspot]).

    Only [chain-collision-mispredict] is error-severity, so auditing a
    workload against its own trained model exits 0 unless the model's
    own key space is self-contradictory.  Diagnostics are byte-identical
    across {!run}, {!run_source} and {!run_sharded}. *)

type options = {
  au_threshold : int;  (** short-lived cutoff, bytes *)
  au_rounding : int;  (** size rounding of portable keys *)
  au_policy : Lp_callchain.Site.policy;
  au_margin : float;  (** threshold-sensitivity band, fraction of cutoff *)
  au_hotspot_share : float;  (** overlap-hotspot share of the global peak *)
  au_model : Lifetime.Model.t option;
  au_online : Lifetime.Oracle.online_params option;
      (** arms [coverage-online-cold]: report keys whose member sites
          are too rare to warm the online oracle's promotion window
          ([lpalloc audit --oracle online]) *)
  au_only : string list option;  (** rule selection, as [lint]'s [--only] *)
  au_disable : string list option;
}

val default_options : options
(** {!Lifetime.Config.default}'s threshold/rounding/policy, the
    analyses' default margins, no model, all rules. *)

val with_model : options -> Lifetime.Model.t -> options
(** Adopt the model's training configuration (threshold, rounding, and
    policy when parseable) so the audit profiles the trace under the
    same abstraction the model was trained with. *)

val rules : Diagnostic.rule list
(** All eight audit rules, in analysis order — the one registry behind
    [--only]/[--disable], [--list-rules], the SARIF driver and the
    README table. *)

val run : options -> Lp_trace.Trace.t -> Diagnostic.t list
(** Audit a materialized trace.  Equivalent to {!run_source} over
    {!Lp_trace.Source.of_trace}.
    @raise Invalid_argument on an unknown rule id in the options. *)

val run_source : options -> Lp_trace.Source.t -> Diagnostic.t list
(** Audit a streaming event source in one bounded-memory pass; the
    source is consumed. *)

val run_sharded : ?domains:int -> options -> Lp_trace.Sharded.t -> Diagnostic.t list
(** Range-parallel audit over the domain pool
    ({!Lifetime.Parallel.map_chunks}); identical output to
    {!run_source} on the whole trace. *)

val clean : Diagnostic.t list -> bool
(** No error-severity diagnostics ([lpalloc audit]'s exit-0 predicate). *)

val rules_markdown : unit -> string
(** The rule registry as a GitHub-flavoured markdown table — the exact
    text embedded in the README (a test keeps the two from drifting). *)
