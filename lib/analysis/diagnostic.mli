(** Structured diagnostics — the shared core of the static-analysis layer.

    Every pass of [lp_analysis] (the trace linter, the shadow-heap
    sanitizer, the predictor-model validator) reports its findings as
    values of {!t}: a stable rule identifier, a severity, the event (or
    replay-operation) index the finding anchors to, the object and
    allocation site involved when known, and a human message.  One
    diagnostic type means one text renderer, one JSON renderer and one
    summary table serve all three passes, and [lpalloc lint]'s exit-code
    contract ("nonzero iff any error-severity diagnostic") is a single
    {!has_errors} call. *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string
(** ["error"], ["warning"], ["info"]. *)

type t = {
  rule : string;  (** stable rule identifier, e.g. ["double-free"] *)
  severity : severity;
  event : int option;
      (** event index in the trace for linter rules; replay-operation
          index (allocs + frees, in order) for sanitizer checks; [None]
          for whole-artifact findings such as model checks *)
  obj : int option;  (** object id, when the finding concerns one *)
  site : string option;
      (** allocation site, address range, or model key, rendered *)
  message : string;
}

val make :
  rule:string ->
  severity:severity ->
  ?event:int ->
  ?obj:int ->
  ?site:string ->
  string ->
  t

val is_error : t -> bool

val has_errors : t list -> bool
(** True iff any diagnostic is error-severity — the exit-code predicate. *)

val pp : ?source:string -> Format.formatter -> t -> unit
(** One line: [<source>:<anchor>: <severity> [<rule>] <message> (<site>)].
    [source] is the analysed file when known. *)

val json_string : string -> string
(** A JSON string literal (quoted, escaped) — shared by the JSON and
    SARIF renderers. *)

val to_json : t -> string
(** One JSON object; absent optional fields are omitted. *)

val list_to_json : t list -> string
(** A JSON array of {!to_json} objects. *)

(** {2 Rules and rule selection} *)

type rule = {
  id : string;
  default_severity : severity;
      (** the severity the rule usually fires at (individual diagnostics
          may differ, e.g. a degenerate-but-legal configuration downgraded
          to a warning) *)
  doc : string;  (** one line, for [--help] and the summary table *)
}

val select : rules:rule list -> ?only:string list -> ?disable:string list -> unit -> string -> bool
(** [select ~rules ?only ?disable ()] is the enabled-predicate over rule
    ids: every rule by default, only [only] when given, minus [disable].
    @raise Invalid_argument if [only] or [disable] name an unknown rule. *)

val pp_summary : rules:rule list -> Format.formatter -> t list -> unit
(** The per-rule summary table (rule, severity, count), zero rows
    included, followed by an error/warning total line. *)
