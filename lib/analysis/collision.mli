(** Chain-key collision detection (the audit's first analysis).

    Scans the merged {!Absint.Site_profile} for predictor keys shared by
    concrete sites on distinct call chains whose observed lifetime
    classes disagree — one member all short-lived, another with
    long-lived objects.  Such keys are guaranteed-mispredict points
    regardless of the class the predictor assigns; with a model at hand,
    a colliding key the model predicts short-lived is reported as an
    error ([chain-collision-mispredict]), otherwise as a warning
    ([chain-collision]).  Both chains, their depths and their clashing
    lifetime quartiles are rendered into the message; the diagnostic
    anchors at the key's first allocation event. *)

val rules : Diagnostic.rule list

val report :
  ?model_index:Lifetime.Model.index ->
  Absint.report_ctx ->
  Absint.Site_profile.merged ->
  Diagnostic.t list
(** Diagnostics in key first-appearance order; deterministic across
    materialized, streamed and sharded profiles. *)
