open Diagnostic
module Model = Lifetime.Model

let rules =
  [
    {
      id = "model-orphaned-site";
      default_severity = Error;
      doc = "a predicted key with empty or self-contradictory statistics";
    };
    {
      id = "model-contradictory-prefix";
      default_severity = Warning;
      doc = "a short-lived label contradicted by the recorded lifetimes";
    };
    {
      id = "model-threshold-range";
      default_severity = Error;
      doc = "a threshold outside the observed lifetime range";
    };
  ]

(* innermost-first: [p] is a proper prefix of [q] when every caller [p]
   retains is the same in [q] and [q] keeps at least one more *)
let rec proper_prefix p q =
  match (p, q) with
  | [], [] -> false
  | [], _ :: _ -> true
  | _ :: _, [] -> false
  | a :: p', b :: q' -> String.equal a b && proper_prefix p' q'

let run ?only ?disable (m : Model.t) =
  let enabled = select ~rules ?only ?disable () in
  let diags = ref [] in
  let emit ~rule ~severity ?event ?site fmt =
    Printf.ksprintf
      (fun msg ->
        if enabled rule then
          diags := make ~rule ~severity ?event ?site msg :: !diags)
      fmt
  in
  let key_name (e : Model.entry) = Lifetime.Portable.to_string e.key in
  (* -- model-level threshold checks -- *)
  if m.threshold <= 0 then
    emit ~rule:"model-threshold-range" ~severity:Error
      "short-lived threshold %d is not positive" m.threshold
  else if m.clock > 0 && m.threshold > m.clock then
    emit ~rule:"model-threshold-range" ~severity:Warning
      "threshold %d exceeds the training run's clock %d, so every object \
       was trivially short-lived"
      m.threshold m.clock;
  let entries = Array.of_list m.entries in
  Array.iteri
    (fun i (e : Model.entry) ->
      let emit ~rule ~severity fmt =
        emit ~rule ~severity ~event:i ~site:(key_name e) fmt
      in
      if e.short_count > e.count || e.count < 0 || e.max_lifetime < 0 then
        emit ~rule:"model-orphaned-site" ~severity:Error
          "inconsistent statistics: %d short-lived of %d observed, max \
           lifetime %d"
          e.short_count e.count e.max_lifetime
      else if e.predicted then begin
        if e.count = 0 then
          emit ~rule:"model-orphaned-site" ~severity:Error
            "predicted key was never observed during training"
        else begin
          if e.short_count < e.count then
            emit ~rule:"model-contradictory-prefix" ~severity:Error
              "predicted short-lived, but training observed %d long-lived \
               object(s) of %d"
              (e.count - e.short_count) e.count;
          if e.max_lifetime >= m.threshold then
            emit ~rule:"model-threshold-range" ~severity:Error
              "predicted key's max observed lifetime %d is not below the \
               threshold %d"
              e.max_lifetime m.threshold;
          (* a predicted key that over-generalises a deeper all-long context *)
          Array.iteri
            (fun j (q : Model.entry) ->
              if
                j <> i && q.count > 0 && q.short_count = 0
                && q.key.Lifetime.Portable.size = e.key.Lifetime.Portable.size
                && proper_prefix e.key.Lifetime.Portable.chain
                     q.key.Lifetime.Portable.chain
              then
                emit ~rule:"model-contradictory-prefix" ~severity:Warning
                  "predicted chain is a prefix of %s, which observed only \
                   long-lived objects"
                  (key_name q))
            entries
        end
      end)
    entries;
  List.rev !diags
