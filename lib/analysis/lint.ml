open Diagnostic

let rules =
  [
    { id = "double-free"; default_severity = Error; doc = "an object is freed twice" };
    {
      id = "free-without-alloc";
      default_severity = Error;
      doc = "a free with no preceding allocation of the object";
    };
    {
      id = "touch-after-free";
      default_severity = Error;
      doc = "a heap reference to an object outside its lifetime";
    };
    {
      id = "size-mismatch-at-free";
      default_severity = Error;
      doc = "a declared sized-deallocation size differs from the allocation";
    };
    {
      id = "nonpositive-size";
      default_severity = Error;
      doc = "an allocation of zero or negative size";
    };
    {
      id = "non-monotonic-birth";
      default_severity = Error;
      doc = "an allocation out of dense birth-timestamp order";
    };
    {
      id = "leaked-at-exit";
      default_severity = Warning;
      doc = "an object still live at the end of the trace";
    };
    {
      id = "chain-anomaly";
      default_severity = Warning;
      doc = "an allocation call-chain that is empty or absurdly deep";
    };
  ]

let default_max_chain_depth = 256

(* per-object replay state for the streaming pass *)
let unborn = -2
let live = -1
(* values >= 0 record the event index of the object's free *)

let render_chain (trace : Lp_trace.Trace.t) chain_id =
  if chain_id < 0 || chain_id >= Array.length trace.chains then
    Printf.sprintf "chain %d" chain_id
  else
    let names = Lp_callchain.Chain.names trace.funcs trace.chains.(chain_id) in
    match names with
    | [] -> "<empty chain>"
    | _ ->
        let shown = List.filteri (fun i _ -> i < 3) names in
        String.concat "<-" shown
        ^ if List.length names > 3 then "<-…" else ""

let run ?only ?disable ?(max_chain_depth = default_max_chain_depth)
    (trace : Lp_trace.Trace.t) =
  let enabled = select ~rules ?only ?disable () in
  let out = ref [] in
  let emit ~rule ~severity ?event ?obj ?site message =
    if enabled rule then
      out := make ~rule ~severity ?event ?obj ?site message :: !out
  in
  let n = trace.n_objects in
  let state = Array.make n unborn in
  let alloc_size = Array.make n 0 in
  let alloc_event = Array.make n (-1) in
  let alloc_chain = Array.make n (-1) in
  (* chain anomalies are per chain, reported once at the chain's first use *)
  let chain_reported = Array.make (max 1 (Array.length trace.chains)) false in
  let next_obj = ref 0 in
  let in_range obj = obj >= 0 && obj < n in
  Array.iteri
    (fun event ev ->
      match (ev : Lp_trace.Event.t) with
      | Alloc { obj; size; chain; _ } ->
          if size <= 0 then
            emit ~rule:"nonpositive-size" ~severity:Error ~event ~obj
              ~site:(render_chain trace chain)
              (Printf.sprintf "allocation of object %d with size %d" obj size);
          if obj <> !next_obj then
            emit ~rule:"non-monotonic-birth" ~severity:Error ~event ~obj
              (Printf.sprintf
                 "allocation of object %d out of birth order (expected object \
                  %d)"
                 obj !next_obj);
          if in_range obj then begin
            if obj >= !next_obj then next_obj := obj + 1;
            state.(obj) <- live;
            alloc_size.(obj) <- size;
            alloc_event.(obj) <- event;
            alloc_chain.(obj) <- chain
          end
          else incr next_obj;
          if
            chain >= 0
            && chain < Array.length trace.chains
            && not chain_reported.(chain)
          then begin
            let depth = Array.length trace.chains.(chain) in
            if depth = 0 then begin
              chain_reported.(chain) <- true;
              emit ~rule:"chain-anomaly" ~severity:Warning ~event ~obj
                ~site:"<empty chain>"
                (Printf.sprintf "allocation call-chain %d is empty" chain)
            end
            else if depth > max_chain_depth then begin
              chain_reported.(chain) <- true;
              emit ~rule:"chain-anomaly" ~severity:Warning ~event ~obj
                ~site:(render_chain trace chain)
                (Printf.sprintf "allocation call-chain %d has depth %d (limit %d)"
                   chain depth max_chain_depth)
            end
          end
      | Free { obj; size } ->
          if (not (in_range obj)) || state.(obj) = unborn then
            emit ~rule:"free-without-alloc" ~severity:Error ~event ~obj
              (Printf.sprintf "free of object %d which has not been allocated"
                 obj)
          else begin
            (if state.(obj) >= 0 then
               emit ~rule:"double-free" ~severity:Error ~event ~obj
                 ~site:(render_chain trace alloc_chain.(obj))
                 (Printf.sprintf "object %d freed again (first freed at event %d)"
                    obj state.(obj)));
            if size >= 0 && size <> alloc_size.(obj) then
              emit ~rule:"size-mismatch-at-free" ~severity:Error ~event ~obj
                ~site:(render_chain trace alloc_chain.(obj))
                (Printf.sprintf
                   "free declares size %d but object %d was allocated with \
                    size %d at event %d"
                   size obj alloc_size.(obj) alloc_event.(obj));
            if state.(obj) = live then state.(obj) <- event
          end
      | Touch { obj; _ } ->
          if (not (in_range obj)) || state.(obj) = unborn then
            emit ~rule:"touch-after-free" ~severity:Error ~event ~obj
              (Printf.sprintf "touch of object %d before its allocation" obj)
          else if state.(obj) >= 0 then
            emit ~rule:"touch-after-free" ~severity:Error ~event ~obj
              ~site:(render_chain trace alloc_chain.(obj))
              (Printf.sprintf "touch of object %d after its free at event %d"
                 obj state.(obj)))
    trace.events;
  for obj = 0 to n - 1 do
    if state.(obj) = live then
      emit ~rule:"leaked-at-exit" ~severity:Warning ~event:alloc_event.(obj)
        ~obj
        ~site:(render_chain trace alloc_chain.(obj))
        (Printf.sprintf "object %d (size %d) still live at end of trace" obj
           alloc_size.(obj))
  done;
  List.rev !out

let clean ds = not (has_errors ds)
