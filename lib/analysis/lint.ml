open Diagnostic

let rules =
  [
    { id = "double-free"; default_severity = Error; doc = "an object is freed twice" };
    {
      id = "free-without-alloc";
      default_severity = Error;
      doc = "a free with no preceding allocation of the object";
    };
    {
      id = "touch-after-free";
      default_severity = Error;
      doc = "a heap reference to an object outside its lifetime";
    };
    {
      id = "size-mismatch-at-free";
      default_severity = Error;
      doc = "a declared sized-deallocation size differs from the allocation";
    };
    {
      id = "realloc-of-unallocated";
      default_severity = Error;
      doc = "a realloc of an object with no preceding allocation";
    };
    {
      id = "realloc-after-free";
      default_severity = Error;
      doc = "a realloc of an object after its free";
    };
    {
      id = "realloc-size-regression";
      default_severity = Error;
      doc = "a realloc whose declared old size is not the object's current size";
    };
    {
      id = "nonpositive-size";
      default_severity = Error;
      doc = "an allocation of zero or negative size";
    };
    {
      id = "non-monotonic-birth";
      default_severity = Error;
      doc = "an allocation out of dense birth-timestamp order";
    };
    {
      id = "leaked-at-exit";
      default_severity = Warning;
      doc = "an object still live at the end of the trace";
    };
    {
      id = "chain-anomaly";
      default_severity = Warning;
      doc = "an allocation call-chain that is empty or absurdly deep";
    };
  ]

let default_max_chain_depth = 256

(* per-object replay state for the streaming pass *)
let unborn = -2
let live = -1
(* values >= 0 record the event index of the object's free *)

let run_source ?only ?disable ?(max_chain_depth = default_max_chain_depth)
    (src : Lp_trace.Source.t) =
  let enabled = select ~rules ?only ?disable () in
  let out = ref [] in
  let emit ~rule ~severity ?event ?obj ?site message =
    if enabled rule then
      out := make ~rule ~severity ?event ?obj ?site message :: !out
  in
  let render_chain chain_id =
    if chain_id < 0 || chain_id >= src.Lp_trace.Source.n_chains () then
      Printf.sprintf "chain %d" chain_id
    else
      let names =
        Lp_callchain.Chain.names
          (src.Lp_trace.Source.funcs ())
          (src.Lp_trace.Source.chain chain_id)
      in
      match names with
      | [] -> "<empty chain>"
      | _ ->
          let shown = List.filteri (fun i _ -> i < 3) names in
          String.concat "<-" shown
          ^ if List.length names > 3 then "<-…" else ""
  in
  let hint =
    match src.Lp_trace.Source.n_objects_hint with
    | Some n -> max 1 n
    | None -> 1024
  in
  let state = Lp_trace.Grow.create ~default:unborn hint in
  let alloc_size = Lp_trace.Grow.create hint in
  let alloc_event = Lp_trace.Grow.create ~default:(-1) hint in
  let alloc_chain = Lp_trace.Grow.create ~default:(-1) hint in
  (* chain anomalies are per chain, reported once at the chain's first use *)
  let chain_reported = Lp_trace.Grow.create 64 in
  let next_obj = ref 0 in
  let event = ref (-1) in
  let rec loop () =
    match Lp_trace.Source.next src with
    | None -> ()
    | Some ev ->
        incr event;
        let event = !event in
        (match (ev : Lp_trace.Event.t) with
        | Alloc { obj; size; chain; _ } ->
            if size <= 0 then
              emit ~rule:"nonpositive-size" ~severity:Error ~event ~obj
                ~site:(render_chain chain)
                (Printf.sprintf "allocation of object %d with size %d" obj size);
            if obj <> !next_obj then
              emit ~rule:"non-monotonic-birth" ~severity:Error ~event ~obj
                (Printf.sprintf
                   "allocation of object %d out of birth order (expected \
                    object %d)"
                   obj !next_obj);
            if obj >= 0 then begin
              if obj >= !next_obj then next_obj := obj + 1;
              Lp_trace.Grow.set state obj live;
              Lp_trace.Grow.set alloc_size obj size;
              Lp_trace.Grow.set alloc_event obj event;
              Lp_trace.Grow.set alloc_chain obj chain
            end
            else incr next_obj;
            if
              chain >= 0
              && chain < src.Lp_trace.Source.n_chains ()
              && Lp_trace.Grow.get chain_reported chain = 0
            then begin
              let depth =
                Array.length (src.Lp_trace.Source.chain chain)
              in
              if depth = 0 then begin
                Lp_trace.Grow.set chain_reported chain 1;
                emit ~rule:"chain-anomaly" ~severity:Warning ~event ~obj
                  ~site:"<empty chain>"
                  (Printf.sprintf "allocation call-chain %d is empty" chain)
              end
              else if depth > max_chain_depth then begin
                Lp_trace.Grow.set chain_reported chain 1;
                emit ~rule:"chain-anomaly" ~severity:Warning ~event ~obj
                  ~site:(render_chain chain)
                  (Printf.sprintf
                     "allocation call-chain %d has depth %d (limit %d)" chain
                     depth max_chain_depth)
              end
            end
        | Free { obj; size } ->
            if obj < 0 || Lp_trace.Grow.get state obj = unborn then
              emit ~rule:"free-without-alloc" ~severity:Error ~event ~obj
                (Printf.sprintf "free of object %d which has not been allocated"
                   obj)
            else begin
              let st = Lp_trace.Grow.get state obj in
              (if st >= 0 then
                 emit ~rule:"double-free" ~severity:Error ~event ~obj
                   ~site:(render_chain (Lp_trace.Grow.get alloc_chain obj))
                   (Printf.sprintf
                      "object %d freed again (first freed at event %d)" obj st));
              if size >= 0 && size <> Lp_trace.Grow.get alloc_size obj then
                emit ~rule:"size-mismatch-at-free" ~severity:Error ~event ~obj
                  ~site:(render_chain (Lp_trace.Grow.get alloc_chain obj))
                  (Printf.sprintf
                     "free declares size %d but object %d was allocated with \
                      size %d at event %d"
                     size obj
                     (Lp_trace.Grow.get alloc_size obj)
                     (Lp_trace.Grow.get alloc_event obj));
              if st = live then Lp_trace.Grow.set state obj event
            end
        | Realloc { obj; old_size; new_size; chain; _ } ->
            if new_size <= 0 then
              emit ~rule:"nonpositive-size" ~severity:Error ~event ~obj
                ~site:(render_chain chain)
                (Printf.sprintf "realloc of object %d to size %d" obj new_size);
            if obj < 0 || Lp_trace.Grow.get state obj = unborn then
              emit ~rule:"realloc-of-unallocated" ~severity:Error ~event ~obj
                ~site:(render_chain chain)
                (Printf.sprintf
                   "realloc of object %d which has not been allocated" obj)
            else begin
              let st = Lp_trace.Grow.get state obj in
              if st >= 0 then
                emit ~rule:"realloc-after-free" ~severity:Error ~event ~obj
                  ~site:(render_chain (Lp_trace.Grow.get alloc_chain obj))
                  (Printf.sprintf
                     "realloc of object %d after its free at event %d" obj st)
              else begin
                (if old_size <> Lp_trace.Grow.get alloc_size obj then
                   emit ~rule:"realloc-size-regression" ~severity:Error ~event
                     ~obj
                     ~site:(render_chain (Lp_trace.Grow.get alloc_chain obj))
                     (Printf.sprintf
                        "realloc declares old size %d but object %d currently \
                         has size %d (allocated at event %d)"
                        old_size obj
                        (Lp_trace.Grow.get alloc_size obj)
                        (Lp_trace.Grow.get alloc_event obj)));
                (* later size checks are against the resized object *)
                Lp_trace.Grow.set alloc_size obj new_size
              end
            end
        | Touch { obj; _ } ->
            if obj < 0 || Lp_trace.Grow.get state obj = unborn then
              emit ~rule:"touch-after-free" ~severity:Error ~event ~obj
                (Printf.sprintf "touch of object %d before its allocation" obj)
            else
              let st = Lp_trace.Grow.get state obj in
              if st >= 0 then
                emit ~rule:"touch-after-free" ~severity:Error ~event ~obj
                  ~site:(render_chain (Lp_trace.Grow.get alloc_chain obj))
                  (Printf.sprintf "touch of object %d after its free at event %d"
                     obj st));
        loop ()
  in
  loop ();
  for obj = 0 to src.Lp_trace.Source.n_objects_now () - 1 do
    if Lp_trace.Grow.get state obj = live then
      emit ~rule:"leaked-at-exit" ~severity:Warning
        ~event:(Lp_trace.Grow.get alloc_event obj)
        ~obj
        ~site:(render_chain (Lp_trace.Grow.get alloc_chain obj))
        (Printf.sprintf "object %d (size %d) still live at end of trace" obj
           (Lp_trace.Grow.get alloc_size obj))
  done;
  List.rev !out

let run ?only ?disable ?max_chain_depth (trace : Lp_trace.Trace.t) =
  run_source ?only ?disable ?max_chain_depth (Lp_trace.Source.of_trace trace)

(* Sharded linting.  Each range replays [run_source]'s state machine
   seeded from its carry-in set (per-object state, last-alloc metadata),
   the footer's next-object id and the absolute first event index, so
   every in-range diagnostic carries exactly the indices and messages the
   sequential pass would emit.  Two rules need cross-range stitching:
   [chain-anomaly] fires once per chain at its first use, so each range
   reports its own first use tagged with the chain id and the merge keeps
   the earliest (ranges are walked in order, so "first seen" is "globally
   first"); [leaked-at-exit] needs the end-of-trace state, which the
   merge obtains by overlaying the ranges' end-state deltas in order —
   each range's end state equals the sequential machine's state at that
   point of the stream, so the last overlay wins exactly like the last
   event does. *)
type range_diag =
  | Plain of Diagnostic.t
  | Chain_once of int * Diagnostic.t  (** chain-anomaly, dedup at merge *)

type range_report = {
  lr_diags : range_diag list;  (** chronological *)
  lr_objs : int array;  (** objects whose state the range wrote *)
  lr_state : int array;  (** unborn / live / first-free event (absolute) *)
  lr_size : int array;
  lr_aevent : int array;
  lr_achain : int array;
}

let run_range ?only ?disable ?(max_chain_depth = default_max_chain_depth)
    (rg : Lp_trace.Sharded.range) =
  let enabled = select ~rules ?only ?disable () in
  let src = Lp_trace.Sharded.range_source rg in
  let out = ref [] in
  let emit ~rule ~severity ?event ?obj ?site message =
    if enabled rule then
      out := Plain (make ~rule ~severity ?event ?obj ?site message) :: !out
  in
  let emit_chain_once ~chain ~severity ?event ?obj ?site message =
    if enabled "chain-anomaly" then
      out :=
        Chain_once
          (chain, make ~rule:"chain-anomaly" ~severity ?event ?obj ?site message)
        :: !out
  in
  let render_chain chain_id =
    if chain_id < 0 || chain_id >= src.Lp_trace.Source.n_chains () then
      Printf.sprintf "chain %d" chain_id
    else
      let names =
        Lp_callchain.Chain.names
          (src.Lp_trace.Source.funcs ())
          (src.Lp_trace.Source.chain chain_id)
      in
      match names with
      | [] -> "<empty chain>"
      | _ ->
          let shown = List.filteri (fun i _ -> i < 3) names in
          String.concat "<-" shown
          ^ if List.length names > 3 then "<-…" else ""
  in
  let hint = max 64 (Array.length rg.Lp_trace.Sharded.rg_carry) in
  let state = Lp_trace.Grow.create ~default:unborn hint in
  let alloc_size = Lp_trace.Grow.create hint in
  let alloc_event = Lp_trace.Grow.create ~default:(-1) hint in
  let alloc_chain = Lp_trace.Grow.create ~default:(-1) hint in
  let chain_reported = Lp_trace.Grow.create 64 in
  let touched = Lp_trace.Grow.create 256 in
  let stamp = Lp_trace.Grow.create hint in
  let touch obj =
    if Lp_trace.Grow.get stamp obj = 0 then begin
      Lp_trace.Grow.set stamp obj 1;
      Lp_trace.Grow.push touched obj
    end
  in
  Array.iter
    (fun (cr : Lp_trace.Binio.carry) ->
      let obj = cr.Lp_trace.Binio.cr_obj in
      Lp_trace.Grow.set state obj
        (if cr.Lp_trace.Binio.cr_freed_at >= 0 then
           cr.Lp_trace.Binio.cr_freed_at
         else live);
      Lp_trace.Grow.set alloc_size obj cr.Lp_trace.Binio.cr_size;
      Lp_trace.Grow.set alloc_event obj cr.Lp_trace.Binio.cr_alloc_event;
      Lp_trace.Grow.set alloc_chain obj cr.Lp_trace.Binio.cr_alloc_chain)
    rg.Lp_trace.Sharded.rg_carry;
  let next_obj = ref rg.Lp_trace.Sharded.rg_next_obj in
  let event = ref (rg.Lp_trace.Sharded.rg_first_event - 1) in
  let rec loop () =
    match Lp_trace.Source.next src with
    | None -> ()
    | Some ev ->
        incr event;
        let event = !event in
        (match (ev : Lp_trace.Event.t) with
        | Alloc { obj; size; chain; _ } ->
            if size <= 0 then
              emit ~rule:"nonpositive-size" ~severity:Error ~event ~obj
                ~site:(render_chain chain)
                (Printf.sprintf "allocation of object %d with size %d" obj size);
            if obj <> !next_obj then
              emit ~rule:"non-monotonic-birth" ~severity:Error ~event ~obj
                (Printf.sprintf
                   "allocation of object %d out of birth order (expected \
                    object %d)"
                   obj !next_obj);
            if obj >= 0 then begin
              if obj >= !next_obj then next_obj := obj + 1;
              touch obj;
              Lp_trace.Grow.set state obj live;
              Lp_trace.Grow.set alloc_size obj size;
              Lp_trace.Grow.set alloc_event obj event;
              Lp_trace.Grow.set alloc_chain obj chain
            end
            else incr next_obj;
            if
              chain >= 0
              && chain < src.Lp_trace.Source.n_chains ()
              && Lp_trace.Grow.get chain_reported chain = 0
            then begin
              let depth = Array.length (src.Lp_trace.Source.chain chain) in
              if depth = 0 then begin
                Lp_trace.Grow.set chain_reported chain 1;
                emit_chain_once ~chain ~severity:Warning ~event ~obj
                  ~site:"<empty chain>"
                  (Printf.sprintf "allocation call-chain %d is empty" chain)
              end
              else if depth > max_chain_depth then begin
                Lp_trace.Grow.set chain_reported chain 1;
                emit_chain_once ~chain ~severity:Warning ~event ~obj
                  ~site:(render_chain chain)
                  (Printf.sprintf
                     "allocation call-chain %d has depth %d (limit %d)" chain
                     depth max_chain_depth)
              end
            end
        | Free { obj; size } ->
            if obj < 0 || Lp_trace.Grow.get state obj = unborn then
              emit ~rule:"free-without-alloc" ~severity:Error ~event ~obj
                (Printf.sprintf "free of object %d which has not been allocated"
                   obj)
            else begin
              let st = Lp_trace.Grow.get state obj in
              (if st >= 0 then
                 emit ~rule:"double-free" ~severity:Error ~event ~obj
                   ~site:(render_chain (Lp_trace.Grow.get alloc_chain obj))
                   (Printf.sprintf
                      "object %d freed again (first freed at event %d)" obj st));
              if size >= 0 && size <> Lp_trace.Grow.get alloc_size obj then
                emit ~rule:"size-mismatch-at-free" ~severity:Error ~event ~obj
                  ~site:(render_chain (Lp_trace.Grow.get alloc_chain obj))
                  (Printf.sprintf
                     "free declares size %d but object %d was allocated with \
                      size %d at event %d"
                     size obj
                     (Lp_trace.Grow.get alloc_size obj)
                     (Lp_trace.Grow.get alloc_event obj));
              if st = live then begin
                touch obj;
                Lp_trace.Grow.set state obj event
              end
            end
        | Realloc { obj; old_size; new_size; chain; _ } ->
            if new_size <= 0 then
              emit ~rule:"nonpositive-size" ~severity:Error ~event ~obj
                ~site:(render_chain chain)
                (Printf.sprintf "realloc of object %d to size %d" obj new_size);
            if obj < 0 || Lp_trace.Grow.get state obj = unborn then
              emit ~rule:"realloc-of-unallocated" ~severity:Error ~event ~obj
                ~site:(render_chain chain)
                (Printf.sprintf
                   "realloc of object %d which has not been allocated" obj)
            else begin
              let st = Lp_trace.Grow.get state obj in
              if st >= 0 then
                emit ~rule:"realloc-after-free" ~severity:Error ~event ~obj
                  ~site:(render_chain (Lp_trace.Grow.get alloc_chain obj))
                  (Printf.sprintf
                     "realloc of object %d after its free at event %d" obj st)
              else begin
                (if old_size <> Lp_trace.Grow.get alloc_size obj then
                   emit ~rule:"realloc-size-regression" ~severity:Error ~event
                     ~obj
                     ~site:(render_chain (Lp_trace.Grow.get alloc_chain obj))
                     (Printf.sprintf
                        "realloc declares old size %d but object %d currently \
                         has size %d (allocated at event %d)"
                        old_size obj
                        (Lp_trace.Grow.get alloc_size obj)
                        (Lp_trace.Grow.get alloc_event obj)));
                (* the range's end-state size must be the resized one so the
                   merge overlay and later ranges agree with the sequential
                   machine (the carry-in sets snapshot post-realloc sizes) *)
                touch obj;
                Lp_trace.Grow.set alloc_size obj new_size
              end
            end
        | Touch { obj; _ } ->
            if obj < 0 || Lp_trace.Grow.get state obj = unborn then
              emit ~rule:"touch-after-free" ~severity:Error ~event ~obj
                (Printf.sprintf "touch of object %d before its allocation" obj)
            else
              let st = Lp_trace.Grow.get state obj in
              if st >= 0 then
                emit ~rule:"touch-after-free" ~severity:Error ~event ~obj
                  ~site:(render_chain (Lp_trace.Grow.get alloc_chain obj))
                  (Printf.sprintf "touch of object %d after its free at event %d"
                     obj st));
        loop ()
  in
  loop ();
  let objs = Lp_trace.Grow.to_array touched in
  {
    lr_diags = List.rev !out;
    lr_objs = objs;
    lr_state = Array.map (Lp_trace.Grow.get state) objs;
    lr_size = Array.map (Lp_trace.Grow.get alloc_size) objs;
    lr_aevent = Array.map (Lp_trace.Grow.get alloc_event) objs;
    lr_achain = Array.map (Lp_trace.Grow.get alloc_chain) objs;
  }

let merge_ranges ?only ?disable (sh : Lp_trace.Sharded.t) reports =
  let enabled = select ~rules ?only ?disable () in
  let ix = Lp_trace.Sharded.index sh in
  let render_chain chain_id =
    if chain_id < 0 || chain_id >= Lp_trace.Binio.indexed_n_chains ix then
      Printf.sprintf "chain %d" chain_id
    else
      let names =
        Lp_callchain.Chain.names
          (Lp_trace.Binio.indexed_funcs ix)
          (Lp_trace.Binio.indexed_chain ix chain_id)
      in
      match names with
      | [] -> "<empty chain>"
      | _ ->
          let shown = List.filteri (fun i _ -> i < 3) names in
          String.concat "<-" shown
          ^ if List.length names > 3 then "<-…" else ""
  in
  let state = Lp_trace.Grow.create ~default:unborn 1024 in
  let alloc_size = Lp_trace.Grow.create 1024 in
  let alloc_event = Lp_trace.Grow.create ~default:(-1) 1024 in
  let alloc_chain = Lp_trace.Grow.create ~default:(-1) 1024 in
  List.iter
    (fun r ->
      Array.iteri
        (fun i obj ->
          Lp_trace.Grow.set state obj r.lr_state.(i);
          Lp_trace.Grow.set alloc_size obj r.lr_size.(i);
          Lp_trace.Grow.set alloc_event obj r.lr_aevent.(i);
          Lp_trace.Grow.set alloc_chain obj r.lr_achain.(i))
        r.lr_objs)
    reports;
  let seen_chains = Hashtbl.create 16 in
  let diags =
    List.concat_map
      (fun r ->
        List.filter_map
          (function
            | Plain d -> Some d
            | Chain_once (chain, d) ->
                if Hashtbl.mem seen_chains chain then None
                else begin
                  Hashtbl.add seen_chains chain ();
                  Some d
                end)
          r.lr_diags)
      reports
  in
  let leaks = ref [] in
  if enabled "leaked-at-exit" then
    for obj = (Lp_trace.Sharded.header sh).Lp_trace.Binio.n_objects - 1
        downto 0 do
      if Lp_trace.Grow.get state obj = live then
        leaks :=
          make ~rule:"leaked-at-exit" ~severity:Warning
            ~event:(Lp_trace.Grow.get alloc_event obj)
            ~obj
            ~site:(render_chain (Lp_trace.Grow.get alloc_chain obj))
            (Printf.sprintf "object %d (size %d) still live at end of trace"
               obj
               (Lp_trace.Grow.get alloc_size obj))
          :: !leaks
    done;
  diags @ !leaks

let run_sharded ?domains ?only ?disable ?max_chain_depth
    (sh : Lp_trace.Sharded.t) =
  merge_ranges ?only ?disable sh
    (Lifetime.Parallel.map_chunks ?domains
       ~n_chunks:(Lp_trace.Sharded.n_chunks sh) (fun ~first ~count ->
         run_range ?only ?disable ?max_chain_depth
           (Lp_trace.Sharded.range sh ~first ~count)))

let clean ds = not (has_errors ds)
