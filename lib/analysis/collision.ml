(* Chain-key collision detection over the site profile.

   A predictor key is the portable abstraction of a concrete site; the
   policy (cycle elimination, length-N truncation, size-only, the CCE
   XOR key) deliberately identifies distinct call chains.  That is
   harmless while the identified sites agree on their lifetime class —
   but a key shared by an all-short site and a site with long-lived
   objects is a guaranteed-mispredict point: whichever class the
   predictor assigns the key, some of its allocations are wrong.  When
   a model is given and it predicts such a key short-lived, the warning
   hardens into an error. *)

open Diagnostic
module Profile = Absint.Site_profile

let rules =
  [
    {
      id = "chain-collision";
      default_severity = Warning;
      doc =
        "distinct call chains share one predictor key but disagree on \
         lifetime class";
    };
    {
      id = "chain-collision-mispredict";
      default_severity = Error;
      doc =
        "a colliding key with disagreeing lifetime classes that the model \
         predicts short-lived";
    };
  ]

let quartiles_of (st : Profile.site) =
  if Lp_quantile.Histogram.count st.st_hist = 0 then "none"
  else
    Format.asprintf "%a" Lp_quantile.Histogram.pp_quartiles
      (Lp_quantile.Histogram.quartiles st.st_hist)

let describe rctx (st : Profile.site) =
  let cls =
    if st.st_count = st.st_short then "all short-lived"
    else
      Printf.sprintf "%d long-lived of %d"
        (st.st_count - st.st_short)
        st.st_count
  in
  Printf.sprintf "%s (depth %d, %d object(s), %s, lifetimes %s)"
    (Absint.render_chain rctx st.st_chain)
    (Absint.chain_depth rctx st.st_chain)
    st.st_count cls (quartiles_of st)

let report ?model_index rctx (pf : Profile.merged) =
  let out = ref [] in
  Array.iter
    (fun (ky : Profile.key) ->
      let members = List.map (fun g -> pf.pf_sites.(g)) ky.ky_sites in
      let shorts =
        List.filter
          (fun (st : Profile.site) ->
            st.st_count > 0 && st.st_short = st.st_count)
          members
      in
      let longs =
        List.filter
          (fun (st : Profile.site) -> st.st_short < st.st_count)
          members
      in
      (* the first short/long member pair on distinct chains, in site
         (= first-appearance) order, anchors the diagnostic *)
      let clash =
        List.find_map
          (fun (s : Profile.site) ->
            List.find_map
              (fun (l : Profile.site) ->
                if l.st_chain <> s.st_chain then Some (s, l) else None)
              longs)
          shorts
      in
      match clash with
      | None -> ()
      | Some (s, l) ->
          let predicted_short =
            match model_index with
            | None -> None
            | Some ix -> (
                match Lifetime.Model.find_key ix ky.ky_key with
                | Some e when e.Lifetime.Model.predicted -> Some e
                | _ -> None)
          in
          let base =
            Printf.sprintf
              "predictor key shared by %d site(s) with disagreeing lifetime \
               classes: %s vs %s"
              (List.length members) (describe rctx s) (describe rctx l)
          in
          let d =
            match predicted_short with
            | Some e ->
                make ~rule:"chain-collision-mispredict" ~severity:Error
                  ~event:ky.ky_first_event
                  ~site:(Lifetime.Portable.to_string ky.ky_key)
                  (Printf.sprintf
                     "%s — the model predicts this key short-lived (%d of %d \
                      training objects short), so the long-lived site's \
                      allocations are guaranteed mispredicts"
                     base e.Lifetime.Model.short_count e.Lifetime.Model.count)
            | None ->
                make ~rule:"chain-collision" ~severity:Warning
                  ~event:ky.ky_first_event
                  ~site:(Lifetime.Portable.to_string ky.ky_key)
                  base
          in
          out := d :: !out)
    pf.pf_keys;
  List.rev !out
