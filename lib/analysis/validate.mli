(** Static validation of portable predictor models.

    A trained model ({!Lifetime.Model}) travels between the profiling and
    production runs as a text file, so it can be stale, hand-edited or
    corrupted.  This pass checks a loaded model against itself — no trace
    required — using the per-key training statistics the format carries:

    - {b model-orphaned-site}: a key the predictor accepted but whose
      recorded training statistics are empty or self-contradictory
      (no observations, or more short-lived observations than
      observations).  Such an entry cannot have come from a training run.
    - {b model-contradictory-prefix}: a short-lived label the statistics
      contradict — either directly (a predicted key that observed
      long-lived objects) or along a call-chain prefix (a predicted key
      whose chain is a proper prefix of another same-size key that
      observed {e only} long-lived objects, so the shorter context
      over-generalises).
    - {b model-threshold-range}: a threshold outside the observed
      lifetime range — non-positive, larger than the training run's
      whole clock (every object trivially short), or not above the
      maximum lifetime recorded for some predicted key. *)

val rules : Diagnostic.rule list

val run :
  ?only:string list -> ?disable:string list -> Lifetime.Model.t ->
  Diagnostic.t list
(** Diagnostics in entry order (model-level checks first).  [event] is
    the 0-based entry index within the model, [site] the portable key.
    [only]/[disable] as in {!Diagnostic.select}.
    @raise Invalid_argument on unknown rule ids. *)
