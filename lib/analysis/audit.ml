(* The audit orchestrator: three analyses over one Absint pass.

   One engine traversal drives two domains — the shared site profile
   (feeding both the collision and coverage analyses) and the
   live-interval domain — then the three reports run over the merged
   summaries.  Everything after the traversal is pure post-processing,
   so materialized, streamed and sharded runs produce byte-identical
   diagnostics. *)

type options = {
  au_threshold : int;
  au_rounding : int;
  au_policy : Lp_callchain.Site.policy;
  au_margin : float;
  au_hotspot_share : float;
  au_model : Lifetime.Model.t option;
  au_online : Lifetime.Oracle.online_params option;
  au_only : string list option;
  au_disable : string list option;
}

let default_options =
  {
    au_threshold = Lifetime.Config.default.short_lived_threshold;
    au_rounding = Lifetime.Config.default.size_rounding;
    au_policy = Lifetime.Config.default.policy;
    au_margin = Coverage.default_margin;
    au_hotspot_share = Liveint.default_hotspot_share;
    au_model = None;
    au_online = None;
    au_only = None;
    au_disable = None;
  }

let with_model opts (m : Lifetime.Model.t) =
  {
    opts with
    au_threshold = m.Lifetime.Model.threshold;
    au_rounding = m.Lifetime.Model.rounding;
    au_policy =
      Option.value (Lifetime.Model.site_policy m) ~default:opts.au_policy;
    au_model = Some m;
  }

let rules = Collision.rules @ Coverage.rules @ Liveint.rules

let analyses opts =
  [
    Absint.Site_profile.domain
      {
        Absint.Site_profile.pc_policy = opts.au_policy;
        pc_rounding = opts.au_rounding;
        pc_threshold = opts.au_threshold;
      };
    Liveint.domain;
  ]

let report opts rctx = function
  | [ prof_tok; live_tok ] ->
      let enabled =
        Diagnostic.select ~rules ?only:opts.au_only ?disable:opts.au_disable ()
      in
      let pf = Absint.Site_profile.project prof_tok in
      let lm = Liveint.project live_tok in
      let model_index = Option.map Lifetime.Model.index opts.au_model in
      Collision.report ?model_index rctx pf
      @ Coverage.report ?model:opts.au_model ?online:opts.au_online
          ~margin:opts.au_margin pf
      @ Liveint.report ~hotspot_share:opts.au_hotspot_share rctx lm
      |> List.filter (fun d -> enabled d.Diagnostic.rule)
  | _ -> invalid_arg "Audit.report: expected two domain tokens"

let run_source opts src =
  let tokens = Absint.run_source ~analyses:(analyses opts) src in
  report opts (Absint.report_ctx_of_source src) tokens

let run opts trace = run_source opts (Lp_trace.Source.of_trace trace)

let run_sharded ?domains opts sh =
  let tokens = Absint.run_sharded ?domains ~analyses:(analyses opts) sh in
  report opts (Absint.report_ctx_of_sharded sh) tokens

let clean ds = not (Diagnostic.has_errors ds)

let rules_markdown () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "| rule | severity | description |\n";
  Buffer.add_string b "|------|----------|-------------|\n";
  List.iter
    (fun (r : Diagnostic.rule) ->
      Buffer.add_string b
        (Printf.sprintf "| `%s` | %s | %s |\n" r.Diagnostic.id
           (Diagnostic.severity_to_string r.Diagnostic.default_severity)
           r.Diagnostic.doc))
    rules;
  Buffer.contents b
