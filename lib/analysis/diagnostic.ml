type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

type t = {
  rule : string;
  severity : severity;
  event : int option;
  obj : int option;
  site : string option;
  message : string;
}

let make ~rule ~severity ?event ?obj ?site message =
  { rule; severity; event; obj; site; message }

let is_error d = d.severity = Error
let has_errors ds = List.exists is_error ds

let pp ?(source = "<input>") ppf d =
  let anchor =
    match d.event with Some e -> Printf.sprintf "event %d" e | None -> "-"
  in
  Format.fprintf ppf "%s:%s: %s [%s] %s" source anchor
    (severity_to_string d.severity)
    d.rule d.message;
  match d.site with
  | Some s -> Format.fprintf ppf " (%s)" s
  | None -> ()

(* minimal JSON string escaping; rule ids and messages are ASCII but sites
   can carry workload-chosen function names *)
let json_string s =
  let b = Buffer.create (String.length s + 8) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let to_json d =
  let fields =
    [
      Some (Printf.sprintf "\"rule\":%s" (json_string d.rule));
      Some
        (Printf.sprintf "\"severity\":%s"
           (json_string (severity_to_string d.severity)));
      Option.map (Printf.sprintf "\"event\":%d") d.event;
      Option.map (Printf.sprintf "\"obj\":%d") d.obj;
      Option.map (fun s -> Printf.sprintf "\"site\":%s" (json_string s)) d.site;
      Some (Printf.sprintf "\"message\":%s" (json_string d.message));
    ]
  in
  "{" ^ String.concat "," (List.filter_map Fun.id fields) ^ "}"

let list_to_json ds = "[" ^ String.concat "," (List.map to_json ds) ^ "]"

type rule = { id : string; default_severity : severity; doc : string }

let select ~rules ?only ?disable () =
  let known id = List.exists (fun r -> r.id = id) rules in
  let check what ids =
    List.iter
      (fun id ->
        if not (known id) then
          invalid_arg
            (Printf.sprintf "Diagnostic.select: unknown rule %S in %s (known: %s)"
               id what
               (String.concat ", " (List.map (fun r -> r.id) rules))))
      ids
  in
  Option.iter (check "--only") only;
  Option.iter (check "--disable") disable;
  fun id ->
    (match only with Some o -> List.mem id o | None -> true)
    && match disable with Some d -> not (List.mem id d) | None -> true

let pp_summary ~rules ppf ds =
  let count id = List.length (List.filter (fun d -> d.rule = id) ds) in
  let width =
    List.fold_left (fun w r -> max w (String.length r.id)) 4 rules
  in
  Format.fprintf ppf "%-*s  %-8s %s@." width "rule" "severity" "count";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-*s  %-8s %d@." width r.id
        (severity_to_string r.default_severity)
        (count r.id))
    rules;
  let sev s = List.length (List.filter (fun d -> d.severity = s) ds) in
  Format.fprintf ppf "%d error(s), %d warning(s), %d info@." (sev Error)
    (sev Warning) (sev Info)
