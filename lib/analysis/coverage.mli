(** Predictor-coverage audit (the audit's second analysis).

    Reads the merged {!Absint.Site_profile} against an optional model:
    trace keys the model lacks ([coverage-cold-start], warning — their
    allocations fall to the fallback path), model keys the trace never
    exercises ([coverage-dead-site], info), and keys whose observed
    maximum lifetime sits within a configurable margin of the
    short-lived cutoff ([coverage-threshold-sensitive], warning — one
    input shift from flipping class; fires with or without a model).
    With [online] parameters ([lpalloc audit --oracle online]) it also
    reports would-be online cold starts ([coverage-online-cold], info):
    keys with member sites the trace exercises fewer than [promote]
    times, which the online oracle would therefore never predict.
    No rule is error-severity, so a clean self-trained audit exits 0. *)

val rules : Diagnostic.rule list

val default_margin : float
(** [0.125]: the sensitivity band is cutoff ± 12.5%. *)

val report :
  ?model:Lifetime.Model.t ->
  ?online:Lifetime.Oracle.online_params ->
  ?margin:float ->
  Absint.Site_profile.merged ->
  Diagnostic.t list
(** Key-order cold-start, online-cold and sensitivity findings, then
    dead model sites in model-entry order.  Without [model], only
    threshold sensitivity and (given [online]) online cold start can
    fire. *)
