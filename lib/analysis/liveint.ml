(* Live-interval overlap analysis: fragmentation pressure before any
   backend replay.

   The domain tracks, per site (birth chain × current size), the bytes
   the site holds live as the stream advances — an interval lattice in
   which an allocation opens an interval, a free closes it and a realloc
   migrates the object's bytes between size buckets of its birth chain.
   Per range it records each site's net byte delta and its *relative*
   peak (the max prefix sum over the range's touching events) together
   with the absolute global live bytes at that moment; the merge
   prefix-sums the nets in range order to recover each site's absolute
   entry level, so site peaks, their events and the foreign co-live
   bytes at the peak are exactly the sequential pass's — a
   max-prefix-sum merge, the same shape as Stats' max-candidate merge.

   A site whose peak is a large share of the global live-heap peak while
   a comparable volume of *other* sites' bytes is co-live marks a
   fragmentation hotspot: interleaved lifetimes from different sites are
   what defeats address-ordered reuse (and what the paper's
   short-lived arenas segregate away). *)

open Diagnostic

type summary = {
  lv_chains : int array;  (** per local site: birth chain id *)
  lv_sizes : int array;  (** per local site: size bucket *)
  lv_net : int array;  (** net in-range byte delta *)
  lv_relpeak : int array;  (** max prefix sum over the range's events *)
  lv_peak_event : int array;  (** first event attaining it (absolute) *)
  lv_glive_at_peak : int array;  (** global live bytes just after it *)
  lv_allocs : int array;
  lv_alloc_bytes : int array;
  lv_gpeak : int;  (** absolute global live-byte peak; [min_int] if empty *)
  lv_gpeak_event : int;
}

type site = {
  li_chain : int;
  li_size : int;
  li_peak : int;  (** peak simultaneous live bytes of this site *)
  li_peak_event : int;
  li_foreign_at_peak : int;  (** other sites' live bytes at that event *)
  li_allocs : int;
  li_alloc_bytes : int;
}

type merged = {
  lm_sites : site array;  (** global first-appearance order *)
  lm_n_sites : int;
  lm_gpeak : int;
  lm_gpeak_event : int;
}

type Absint.token += Summary of summary | Merged of merged

let enter (_src : Lp_trace.Source.t) (_en : Absint.entry) =
  let interned : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let n_sites = ref 0 in
  let chains = ref [] and sizes = ref [] in
  let net = Lp_trace.Grow.create 256 in
  let relpeak = Lp_trace.Grow.create 256 in
  let peak_event = Lp_trace.Grow.create 256 in
  let glive_at_peak = Lp_trace.Grow.create 256 in
  let allocs = Lp_trace.Grow.create 256 in
  let alloc_bytes = Lp_trace.Grow.create 256 in
  let gpeak = ref min_int and gpeak_event = ref (-1) in
  let intern chain size =
    match Hashtbl.find_opt interned (chain, size) with
    | Some id -> id
    | None ->
        let id = !n_sites in
        incr n_sites;
        Hashtbl.add interned (chain, size) id;
        chains := chain :: !chains;
        sizes := size :: !sizes;
        Lp_trace.Grow.set net id 0;
        Lp_trace.Grow.set relpeak id min_int;
        Lp_trace.Grow.set peak_event id (-1);
        Lp_trace.Grow.set glive_at_peak id 0;
        Lp_trace.Grow.set allocs id 0;
        Lp_trace.Grow.set alloc_bytes id 0;
        id
  in
  let step (ctx : Absint.ctx) ev =
    let site_delta ~event ~glive_post chain size delta =
      let id = intern chain size in
      let n = Lp_trace.Grow.get net id + delta in
      Lp_trace.Grow.set net id n;
      if n > Lp_trace.Grow.get relpeak id then begin
        Lp_trace.Grow.set relpeak id n;
        Lp_trace.Grow.set peak_event id event;
        Lp_trace.Grow.set glive_at_peak id glive_post
      end
    in
    let event = ctx.Absint.cx_event in
    let gdelta =
      match ev with
      | Lp_trace.Event.Alloc { size; _ } -> size
      | Lp_trace.Event.Free { obj; _ } ->
          if obj >= 0 then -ctx.Absint.cx_cur_size obj else 0
      | Lp_trace.Event.Realloc { obj; new_size; _ } ->
          if obj >= 0 then new_size - ctx.Absint.cx_cur_size obj else 0
      | Lp_trace.Event.Touch _ -> 0
    in
    let glive_post = ctx.Absint.cx_live_bytes + gdelta in
    (match ev with
    | Lp_trace.Event.Alloc { obj = _; size; chain; _ } ->
        let id = intern chain size in
        Lp_trace.Grow.set allocs id (Lp_trace.Grow.get allocs id + 1);
        Lp_trace.Grow.set alloc_bytes id
          (Lp_trace.Grow.get alloc_bytes id + size);
        site_delta ~event ~glive_post chain size size
    | Lp_trace.Event.Free { obj; _ } ->
        if ctx.Absint.cx_born obj then
          site_delta ~event ~glive_post
            (ctx.Absint.cx_birth_chain obj)
            (ctx.Absint.cx_cur_size obj)
            (-ctx.Absint.cx_cur_size obj)
    | Lp_trace.Event.Realloc { obj; new_size; _ } ->
        if ctx.Absint.cx_born obj then begin
          let chain = ctx.Absint.cx_birth_chain obj in
          let cur = ctx.Absint.cx_cur_size obj in
          (* the object's bytes migrate between its birth chain's size
             buckets: close the old interval, open the new one *)
          site_delta ~event ~glive_post chain cur (-cur);
          site_delta ~event ~glive_post chain new_size new_size
        end
    | Lp_trace.Event.Touch _ -> ());
    if glive_post > !gpeak then begin
      gpeak := glive_post;
      gpeak_event := event
    end
  in
  let finish () =
    let n = !n_sites in
    let arr g = Array.init n (Lp_trace.Grow.get g) in
    Summary
      {
        lv_chains = Array.of_list (List.rev !chains);
        lv_sizes = Array.of_list (List.rev !sizes);
        lv_net = arr net;
        lv_relpeak = arr relpeak;
        lv_peak_event = arr peak_event;
        lv_glive_at_peak = arr glive_at_peak;
        lv_allocs = arr allocs;
        lv_alloc_bytes = arr alloc_bytes;
        lv_gpeak = !gpeak;
        lv_gpeak_event = !gpeak_event;
      }
  in
  (step, finish)

let unpack = function
  | Summary s -> s
  | _ -> invalid_arg "Liveint: foreign token"

type acc = {
  ac_chain : int;
  ac_size : int;
  mutable ac_entry : int;  (** live bytes at the next range's entry *)
  mutable ac_peak : int;
  mutable ac_peak_event : int;
  mutable ac_foreign : int;
  mutable ac_allocs : int;
  mutable ac_alloc_bytes : int;
}

let merge tokens =
  let sums = List.map unpack tokens in
  let site_ids : (int * int, acc) Hashtbl.t = Hashtbl.create 1024 in
  let accs_rev = ref [] in
  let gpeak = ref min_int and gpeak_event = ref (-1) in
  List.iter
    (fun s ->
      Array.iteri
        (fun l chain ->
          let size = s.lv_sizes.(l) in
          let a =
            match Hashtbl.find_opt site_ids (chain, size) with
            | Some a -> a
            | None ->
                let a =
                  {
                    ac_chain = chain;
                    ac_size = size;
                    ac_entry = 0;
                    ac_peak = min_int;
                    ac_peak_event = -1;
                    ac_foreign = 0;
                    ac_allocs = 0;
                    ac_alloc_bytes = 0;
                  }
                in
                Hashtbl.add site_ids (chain, size) a;
                accs_rev := a :: !accs_rev;
                a
          in
          (* the range's relative peak shifted by the site's absolute
             entry level; strict > keeps the earliest attainment, since
             ranges arrive in order *)
          let candidate = a.ac_entry + s.lv_relpeak.(l) in
          if candidate > a.ac_peak then begin
            a.ac_peak <- candidate;
            a.ac_peak_event <- s.lv_peak_event.(l);
            a.ac_foreign <- s.lv_glive_at_peak.(l) - candidate
          end;
          a.ac_entry <- a.ac_entry + s.lv_net.(l);
          a.ac_allocs <- a.ac_allocs + s.lv_allocs.(l);
          a.ac_alloc_bytes <- a.ac_alloc_bytes + s.lv_alloc_bytes.(l))
        s.lv_chains;
      if s.lv_gpeak > !gpeak then begin
        gpeak := s.lv_gpeak;
        gpeak_event := s.lv_gpeak_event
      end)
    sums;
  let accs = Array.of_list (List.rev !accs_rev) in
  Merged
    {
      lm_sites =
        Array.map
          (fun a ->
            {
              li_chain = a.ac_chain;
              li_size = a.ac_size;
              li_peak = a.ac_peak;
              li_peak_event = a.ac_peak_event;
              li_foreign_at_peak = a.ac_foreign;
              li_allocs = a.ac_allocs;
              li_alloc_bytes = a.ac_alloc_bytes;
            })
          accs;
      lm_n_sites = Array.length accs;
      lm_gpeak = !gpeak;
      lm_gpeak_event = !gpeak_event;
    }

let domain : (module Absint.DOMAIN) =
  (module struct
    let name = "live-intervals"
    let enter = enter
    let merge = merge
  end)

let project = function
  | Merged m -> m
  | _ -> invalid_arg "Liveint.project: not a live-interval token"

let rules =
  [
    {
      id = "live-overlap-hotspot";
      default_severity = Warning;
      doc =
        "a site's live-byte peak overlaps heavily with foreign live bytes \
         (fragmentation hotspot)";
    };
    {
      id = "live-peak-pressure";
      default_severity = Info;
      doc = "the trace's peak simultaneous live bytes and where it occurs";
    };
  ]

let default_hotspot_share = 0.25

let report ?(hotspot_share = default_hotspot_share) rctx (m : merged) =
  let out = ref [] in
  if m.lm_gpeak > min_int && m.lm_gpeak > 0 then begin
    let gpeak = float_of_int m.lm_gpeak in
    Array.iter
      (fun (st : site) ->
        if
          st.li_peak > 0
          && float_of_int st.li_peak >= hotspot_share *. gpeak
          && float_of_int st.li_foreign_at_peak >= hotspot_share *. gpeak
        then
          out :=
            make ~rule:"live-overlap-hotspot" ~severity:Warning
              ~event:st.li_peak_event
              ~site:
                (Printf.sprintf "[%s; size=%d]"
                   (Absint.render_chain rctx st.li_chain)
                   st.li_size)
              (Printf.sprintf
                 "site peaks at %d live bytes (%.0f%% of the global peak %d) \
                  while %d foreign bytes are co-live — interleaved lifetimes \
                  predict fragmentation here (%d allocation(s), %d bytes \
                  total)"
                 st.li_peak
                 (100. *. float_of_int st.li_peak /. gpeak)
                 m.lm_gpeak st.li_foreign_at_peak st.li_allocs
                 st.li_alloc_bytes)
            :: !out)
      m.lm_sites;
    out :=
      make ~rule:"live-peak-pressure" ~severity:Info ~event:m.lm_gpeak_event
        (Printf.sprintf
           "peak live heap: %d bytes at event %d, spread over %d site(s)"
           m.lm_gpeak m.lm_gpeak_event m.lm_n_sites)
      :: !out
  end;
  List.rev !out
