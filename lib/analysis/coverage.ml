(* Predictor-coverage audit: how well does a model cover a trace?

   Three gaps matter to the paper's predictor.  A trace key the model
   has never seen falls to the allocator's fallback path on every
   allocation (cold start); a model key the trace never exercises is
   dead weight in the site database; and a key whose observed lifetimes
   crowd the short-lived cutoff is one input shift away from flipping
   class — exactly the sites an online-adaptive predictor would watch.
   All three are non-fatal (warnings/info): a clean self-trained
   workload audit exits 0. *)

open Diagnostic
module Profile = Absint.Site_profile

let rules =
  [
    {
      id = "coverage-cold-start";
      default_severity = Warning;
      doc = "a trace site absent from the model (falls to the fallback path)";
    };
    {
      id = "coverage-dead-site";
      default_severity = Info;
      doc = "a model site never exercised by the trace";
    };
    {
      id = "coverage-threshold-sensitive";
      default_severity = Warning;
      doc =
        "a site's observed lifetimes sit within the margin of the \
         short-lived cutoff";
    };
    {
      id = "coverage-online-cold";
      default_severity = Info;
      doc =
        "a key with member sites too rare to warm the online oracle's \
         promotion window (with --oracle online)";
    };
  ]

let default_margin = 0.125

let report ?model ?online ?(margin = default_margin) (pf : Profile.merged) =
  let out = ref [] in
  let emit d = out := d :: !out in
  let index = Option.map Lifetime.Model.index model in
  let threshold = float_of_int pf.pf_threshold in
  let lo = (1. -. margin) *. threshold and hi = (1. +. margin) *. threshold in
  let seen : unit Lifetime.Portable.Table.t =
    Lifetime.Portable.Table.create (max 16 (Array.length pf.pf_keys))
  in
  Array.iter
    (fun (ky : Profile.key) ->
      Lifetime.Portable.Table.replace seen ky.ky_key ();
      (match index with
      | Some ix when Lifetime.Model.find_key ix ky.ky_key = None ->
          emit
            (make ~rule:"coverage-cold-start" ~severity:Warning
               ~event:ky.ky_first_event
               ~site:(Lifetime.Portable.to_string ky.ky_key)
               (Printf.sprintf
                  "site unseen in training: %d object(s) (%d bytes) across %d \
                   call chain(s) fall to the fallback path"
                  ky.ky_count ky.ky_bytes
                  (List.length ky.ky_sites)))
      | _ -> ());
      (* --oracle online cold start: the online oracle predicts per raw
         (chain, size) site and only after a site's first [promote]
         allocations all died young; a member site the trace exercises
         fewer than [promote] times therefore never leaves the cold-start
         window — its allocations are unpredicted for the whole run,
         however short-lived the key looks in aggregate *)
      (match (online : Lifetime.Oracle.online_params option) with
      | Some p when ky.ky_count > 0 ->
          let cold_sites, cold_objs, cold_bytes =
            List.fold_left
              (fun (n, objs, bytes) s ->
                let st = pf.Profile.pf_sites.(s) in
                if st.Profile.st_count < p.Lifetime.Oracle.promote then
                  (n + 1, objs + st.Profile.st_count, bytes + st.Profile.st_bytes)
                else (n, objs, bytes))
              (0, 0, 0) ky.ky_sites
          in
          if cold_sites > 0 then
            emit
              (make ~rule:"coverage-online-cold" ~severity:Info
                 ~event:ky.ky_first_event
                 ~site:(Lifetime.Portable.to_string ky.ky_key)
                 (Printf.sprintf
                    "online cold start: %d of %d member site(s) (%d object(s), \
                     %d bytes) never reach the promote threshold %d — \
                     unpredicted for the whole run under --oracle online"
                    cold_sites
                    (List.length ky.ky_sites)
                    cold_objs cold_bytes p.Lifetime.Oracle.promote))
      | _ -> ());
      let m = float_of_int ky.ky_max_lifetime in
      if ky.ky_count > 0 && m >= lo && m < hi then
        emit
          (make ~rule:"coverage-threshold-sensitive" ~severity:Warning
             ~event:ky.ky_first_event
             ~site:(Lifetime.Portable.to_string ky.ky_key)
             (Printf.sprintf
                "observed max lifetime %d is within %.3g%% of the short-lived \
                 cutoff %d (on the %s side): one input shift could flip its \
                 class"
                ky.ky_max_lifetime (100. *. margin) pf.pf_threshold
                (if ky.ky_max_lifetime < pf.pf_threshold then "short"
                 else "long"))))
    pf.pf_keys;
  (match model with
  | None -> ()
  | Some (m : Lifetime.Model.t) ->
      List.iter
        (fun (e : Lifetime.Model.entry) ->
          if not (Lifetime.Portable.Table.mem seen e.key) then
            emit
              (make ~rule:"coverage-dead-site" ~severity:Info
                 ~site:(Lifetime.Portable.to_string e.key)
                 (Printf.sprintf
                    "model site never exercised by this trace (%d training \
                     object(s), predicted=%s)"
                    e.count
                    (if e.predicted then "short-lived" else "unpredicted"))))
        m.entries);
  List.rev !out
