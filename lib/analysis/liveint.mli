(** Live-interval overlap analysis (the audit's third analysis).

    An {!Absint} domain over the interval lattice per site — a site here
    being (birth chain × current size bucket): an allocation opens an
    interval, a free closes it, a realloc migrates the object's bytes
    between size buckets of its birth chain.  Per range it records each
    site's net byte delta and relative peak (max prefix sum); the merge
    prefix-sums nets in range order to recover absolute per-site peaks,
    their events, and the foreign co-live bytes at the peak —
    byte-identical to the sequential pass.

    The report surfaces the global live-heap peak
    ([live-peak-pressure], info) and fragmentation hotspots
    ([live-overlap-hotspot], warning): sites whose own peak and the
    foreign bytes co-live at it both exceed a configurable share of the
    global peak — interleaved lifetimes from different sites being what
    defeats address-ordered reuse and what short-lived arenas segregate
    away. *)

type site = {
  li_chain : int;  (** birth chain id *)
  li_size : int;  (** size bucket (current size at the interval's open) *)
  li_peak : int;  (** peak simultaneous live bytes of this site *)
  li_peak_event : int;  (** first event attaining the peak *)
  li_foreign_at_peak : int;  (** other sites' live bytes at that event *)
  li_allocs : int;
  li_alloc_bytes : int;
}

type merged = {
  lm_sites : site array;  (** global first-appearance order *)
  lm_n_sites : int;
  lm_gpeak : int;  (** global live-byte peak; [min_int] on empty input *)
  lm_gpeak_event : int;
}

type summary
(** Per-range token payload; an implementation detail of the merge. *)

type Absint.token += Summary of summary | Merged of merged

val domain : (module Absint.DOMAIN)

val project : Absint.token -> merged
(** Unpack the merged token. @raise Invalid_argument on foreign tokens. *)

val rules : Diagnostic.rule list

val default_hotspot_share : float
(** [0.25]: a hotspot needs its own peak {e and} the foreign co-live
    bytes each ≥ 25% of the global peak. *)

val report :
  ?hotspot_share:float -> Absint.report_ctx -> merged -> Diagnostic.t list
(** Hotspots in site first-appearance order, then the global peak. *)
