(* SARIF 2.1.0 rendering of diagnostic lists.

   One run, one driver, the pass's rule registry as reportingDescriptors
   and each diagnostic as a result.  SARIF has no notion of an event
   index inside a binary trace, so the anchor (event, object id, raw
   site string) rides in each result's property bag and the analysed
   trace file, when known, becomes the single artifact location.  The
   output is a single line, like the JSON renderer, so CI can diff
   byte-for-byte. *)

let level_of = function
  | Diagnostic.Error -> "error"
  | Diagnostic.Warning -> "warning"
  | Diagnostic.Info -> "note"

let js = Diagnostic.json_string

let rule_descriptor (r : Diagnostic.rule) =
  Printf.sprintf
    "{\"id\":%s,\"shortDescription\":{\"text\":%s},\"defaultConfiguration\":{\"level\":%s}}"
    (js r.Diagnostic.id) (js r.Diagnostic.doc)
    (js (level_of r.Diagnostic.default_severity))

let result ?source (d : Diagnostic.t) =
  let properties =
    List.filter_map Fun.id
      [
        Option.map (Printf.sprintf "\"event\":%d") d.Diagnostic.event;
        Option.map (Printf.sprintf "\"obj\":%d") d.Diagnostic.obj;
        Option.map
          (fun s -> Printf.sprintf "\"site\":%s" (js s))
          d.Diagnostic.site;
      ]
  in
  let fields =
    List.filter_map Fun.id
      [
        Some (Printf.sprintf "\"ruleId\":%s" (js d.Diagnostic.rule));
        Some
          (Printf.sprintf "\"level\":%s"
             (js (level_of d.Diagnostic.severity)));
        Some
          (Printf.sprintf "\"message\":{\"text\":%s}" (js d.Diagnostic.message));
        Option.map
          (fun src ->
            Printf.sprintf
              "\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":%s}}}]"
              (js src))
          source;
        (match properties with
        | [] -> None
        | ps ->
            Some
              (Printf.sprintf "\"properties\":{%s}" (String.concat "," ps)));
      ]
  in
  "{" ^ String.concat "," fields ^ "}"

let to_string ~tool_name ~rules ?source diags =
  Printf.sprintf
    "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":%s,\"rules\":[%s]}},\"results\":[%s]}]}"
    (js tool_name)
    (String.concat "," (List.map rule_descriptor rules))
    (String.concat "," (List.map (result ?source) diags))
