(** The audit engine: abstract interpretation over trace streams.

    One concrete pass drives any number of {e abstract domains} over the
    event stream.  The engine owns the concrete semantics — event index,
    allocation clock, live-heap byte/object counters, per-object current
    size and birth chain — and exposes them to each domain's step
    function as a {!ctx}; a domain folds the events of one {e range}
    into a {!token} summary and merges a covering partition's summaries,
    walked in range order, into the whole-trace result.

    The [run_range]/[merge_ranges] split follows the
    stats/lifetimes/train/lint folds: every range is seeded from the
    sharded footer's entry counters and carry-in set
    ({!Lp_trace.Sharded.range}), and the sequential paths are the
    one-range special case ({!run_source} replays the whole stream as a
    single range and merges the singleton).  Materialized, [--stream]
    and [--sharded] runs of a well-formed trace therefore produce
    byte-identical results at any domain count, provided the domain's
    [merge] reproduces sequential accumulation order — interning in
    range order is global first-appearance order, and deferred
    per-allocation observations replay in global allocation order.

    Domains publish their summaries through the extensible {!token}
    type (each adds a private constructor), which keeps the engine
    first-order: a heterogeneous list of domains runs in one pass and
    their summaries cross OCaml domains as plain values. *)

type token = ..
(** A domain's range or merged summary.  Each domain extends this with
    its own constructor and exposes a [project] to unpack the merge. *)

type entry = {
  en_first_event : int;  (** global index of the range's first event *)
  en_start_clock : int;  (** bytes allocated before the range *)
  en_live_bytes : int;  (** live bytes at range entry *)
  en_live_objs : int;
  en_next_obj : int;  (** next dense-birth object id at range entry *)
  en_carry : Lp_trace.Binio.carry array;
}
(** Where in the trace a range starts: {!Lp_trace.Sharded.range} minus
    the cursor. *)

val whole : entry
(** The trace-initial entry (event 0, zero clocks, empty carry) — what
    sequential runs seed with. *)

val entry_of_range : Lp_trace.Sharded.range -> entry

type ctx = {
  mutable cx_event : int;  (** index of the current event (absolute) *)
  mutable cx_clock : int;  (** allocation clock {e before} the event *)
  mutable cx_live_bytes : int;  (** live bytes {e before} the event *)
  mutable cx_live_objs : int;
  cx_src : Lp_trace.Source.t;  (** for table lookups (chains, funcs) *)
  cx_cur_size : int -> int;
      (** an object's current (post-resize) size; [0] if never allocated *)
  cx_born : int -> bool;  (** has the object been allocated (ever)? *)
  cx_birth_chain : int -> int;
      (** the chain of the object's {e birth} allocation — reallocs don't
          change it — or [-1] if unknown *)
}
(** The engine's concrete state, as each domain's step observes it:
    pre-event values, updated by the engine after all domains have seen
    the event. *)

module type DOMAIN = sig
  val name : string

  val enter :
    Lp_trace.Source.t -> entry -> (ctx -> Lp_trace.Event.t -> unit) * (unit -> token)
  (** Start a range: return the per-event step and the finisher that
      packs the range summary. *)

  val merge : token list -> token
  (** Combine a covering partition's summaries, given in range order.
      Sequential runs call this on a singleton. *)
end

val run_range : analyses:(module DOMAIN) list -> Lp_trace.Sharded.range -> token list
(** Replay one range under every domain in a single pass; one (unmerged)
    summary token per domain, in domain order. *)

val merge_ranges :
  analyses:(module DOMAIN) list -> token list list -> token list
(** Merge per-range token lists (outer list in range order) into one
    merged token per domain. *)

val run_source :
  analyses:(module DOMAIN) list -> Lp_trace.Source.t -> token list
(** The sequential path: the whole stream as a single range, merged.
    The source is consumed. *)

val run_sharded :
  ?domains:int ->
  analyses:(module DOMAIN) list ->
  Lp_trace.Sharded.t ->
  token list
(** Fan the chunk index over the domain pool
    ({!Lifetime.Parallel.map_chunks}) and merge in range order.  Output
    is identical to {!run_source} over the same trace. *)

(** {1 Report rendering}

    Reports run after the pass, against the complete interned tables. *)

type report_ctx = {
  rp_funcs : Lp_callchain.Func.table;
  rp_chain : int -> Lp_callchain.Chain.t;
  rp_n_chains : int;
}

val report_ctx_of_source : Lp_trace.Source.t -> report_ctx
(** From an exhausted source (tables complete). *)

val report_ctx_of_sharded : Lp_trace.Sharded.t -> report_ctx

val chain_depth : report_ctx -> int -> int
(** Frame count of a chain; [0] when the id is unresolvable. *)

val render_chain : report_ctx -> int -> string
(** First three frames, innermost first, ["<-…"]-elided — the linter's
    rendering. *)

(** {1 The shared site domain}

    The per-(chain, size) abstract domain both the collision and the
    coverage analyses consume: every allocation is attributed to its
    concrete site (raw chain id × exact size) and to the portable
    predictor key the configured policy maps that site onto, with
    per-site and per-key lifetime statistics accumulated through the
    {!Lp_trace.Lifetimes.Fold} machinery (deferred, so survivors get
    their end-of-trace lifetimes).  Several concrete sites mapping onto
    one key is exactly a {e key collision}. *)
module Site_profile : sig
  type config = {
    pc_policy : Lp_callchain.Site.policy;
    pc_rounding : int;  (** portable-key size rounding *)
    pc_threshold : int;  (** short-lived cutoff, bytes *)
  }

  type site = {
    st_chain : int;  (** raw chain id *)
    st_size : int;  (** exact allocation size *)
    st_key : int;  (** index into [pf_keys] *)
    st_first_event : int;  (** first allocation under this site *)
    mutable st_count : int;
    mutable st_short : int;
    mutable st_survivors : int;
    mutable st_max_lifetime : int;
    mutable st_bytes : int;
    st_hist : Lp_quantile.Histogram.t;
        (** count-weighted lifetime quartile histogram *)
  }

  type key = {
    ky_key : Lifetime.Portable.t;
    ky_first_event : int;
    mutable ky_sites : int list;  (** member sites, first-appearance order *)
    mutable ky_count : int;
    mutable ky_short : int;
    mutable ky_survivors : int;
    mutable ky_max_lifetime : int;
    mutable ky_bytes : int;
  }

  type merged = {
    pf_sites : site array;  (** global first-appearance order *)
    pf_keys : key array;  (** global first-appearance order *)
    pf_end_clock : int;
    pf_threshold : int;
  }

  val domain : config -> (module DOMAIN)

  val project : token -> merged
  (** Unpack this domain's merged token.
      @raise Invalid_argument on a foreign token. *)
end
