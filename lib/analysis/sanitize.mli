(** The shadow-heap sanitizer: an ASan-style wrapper over any allocator
    backend.

    {!wrap} composes over an arbitrary {!Lp_allocsim.Backend.BACKEND} and
    mirrors every placement the backend makes into a shadow interval map
    of the simulated address space.  A backend bug that the replay engine
    cannot see — two live blocks overlapping, a free at an address the
    backend never returned, a misaligned or boundary-straddling block —
    raises {!Violation} at the exact operation, instead of silently
    corrupting the heap-size and fragmentation tables downstream.

    Four checks:

    - [shadow-overlap] (error): a new block overlaps a live one.
    - [shadow-unmapped-free] (error): a free at an address with no live
      block starting there.
    - [shadow-misaligned] (error): a block whose address is not a
      multiple of [alignment] (only checked when [alignment > 1]; the
      backends make no common alignment promise, so the default is 1).
    - [shadow-boundary] (error): a block straddling the [boundary]
      address — for the arena backend, the line between the fixed arena
      area and the fallback heap, which no single block may cross.

    The wrapper delegates [name], every counter and [extra] to the inner
    backend, so metrics produced under the sanitizer are byte-identical
    to an unsanitized replay; [check_invariants] additionally verifies
    that the shadow block count matches the backend's live count. *)

exception Violation of Diagnostic.t
(** Raised at the offending operation.  The diagnostic's [event] is the
    replay-operation index (allocs and frees, in call order, from 0) —
    not the trace event index, since touches never reach the backend. *)

val rules : Diagnostic.rule list

val wrap :
  ?alignment:int -> ?boundary:int -> Lp_allocsim.Backend.t -> Lp_allocsim.Backend.t
(** [wrap backend] is a backend with the same name and metrics whose
    allocs and frees are checked against the shadow heap.
    @raise Invalid_argument if [alignment < 1]. *)

val for_backend :
  ?alignment:int ->
  ?arena_config:Lp_allocsim.Arena.config ->
  Lp_allocsim.Backend.t ->
  Lp_allocsim.Backend.t
(** {!wrap} with the backend-appropriate geometry: the arena backend gets
    [boundary] set to the end of its arena area ([n_arenas * arena_size],
    the paper's 64 KB by default); other backends get no boundary.  This
    is what [lpalloc simulate --sanitize] passes to
    {!Lifetime.Simulate.run}'s [wrap] hook. *)
