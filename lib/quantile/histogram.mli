(** Quantile histograms of object lifetimes.

    A quantile histogram, in the sense of Barrett & Zorn §4.1, is a compact
    summary of a distribution: the exact minimum and maximum together with P²
    estimates of the three quartiles.  The paper keeps one per allocation
    site; Table 3 shows one per program.

    [weighted] observation support exists because the paper's Table 3 reads
    "each column gives the lifetime for which that percentage of bytes is
    alive" — i.e. the distribution is weighted by object size, not by object
    count. *)

type t

type quartiles = {
  min : float;
  q25 : float;
  median : float;
  q75 : float;
  max : float;
}
(** The five summary values reported per row of Table 3. *)

val create : unit -> t

val observe : t -> float -> unit
(** [observe t x] records one observation with weight 1. *)

val observe_weighted : t -> weight:int -> float -> unit
(** [observe_weighted t ~weight x] records [x] as if it occurred [weight]
    times, but feeds the P² markers only O(log weight) synthetic
    observations so that byte-weighted histograms over multi-megabyte runs
    stay cheap.  [weight] must be positive. *)

val count : t -> int
(** Total weight observed. *)

val quartiles : t -> quartiles
(** The reported values are always ordered
    [min <= q25 <= median <= q75 <= max]: the three quartile estimators
    are independent, so their raw estimates can cross by approximation
    error, and [quartiles] repairs any crossing with the median anchored.
    @raise Invalid_argument if nothing has been observed. *)

val mean : t -> float
(** Arithmetic mean of the (weighted) observations.
    @raise Invalid_argument if nothing has been observed. *)

val pp_quartiles : Format.formatter -> quartiles -> unit
