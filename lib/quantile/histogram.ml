type quartiles = {
  min : float;
  q25 : float;
  median : float;
  q75 : float;
  max : float;
}

type t = {
  q25e : P2.t;
  q50e : P2.t;
  q75e : P2.t;
  mutable lo : float;
  mutable hi : float;
  mutable total_weight : int;
  mutable sum : float;
}

let create () =
  {
    q25e = P2.create 0.25;
    q50e = P2.create 0.50;
    q75e = P2.create 0.75;
    lo = infinity;
    hi = neg_infinity;
    total_weight = 0;
    sum = 0.;
  }

let observe_n t n x =
  for _ = 1 to n do
    P2.observe t.q25e x;
    P2.observe t.q50e x;
    P2.observe t.q75e x
  done

let observe t x =
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x;
  t.total_weight <- t.total_weight + 1;
  t.sum <- t.sum +. x;
  observe_n t 1 x

let observe_weighted t ~weight x =
  if weight <= 0 then invalid_arg "Histogram.observe_weighted: weight must be positive";
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x;
  t.total_weight <- t.total_weight + weight;
  t.sum <- t.sum +. (float_of_int weight *. x);
  (* Feed a logarithmic number of repetitions: enough for the markers to move
     in proportion to the weight without O(weight) cost.  The repetition
     count is 1 + floor(log2 weight), preserving the relative ordering of
     light and heavy observations. *)
  let rec reps acc w = if w <= 1 then acc else reps (acc + 1) (w lsr 1) in
  observe_n t (reps 1 weight) x

let count t = t.total_weight

let quartiles t =
  if t.total_weight = 0 then invalid_arg "Histogram.quartiles: no observations";
  (* The three P² estimators are independent, so their approximation
     errors are too: on adversarial orderings the raw 25% estimate can
     land above the raw median.  Repair to monotone with the median
     anchored — each estimate stays within the observed range because
     every P² marker does. *)
  let median = P2.quantile t.q50e in
  {
    min = t.lo;
    q25 = Float.min (P2.quantile t.q25e) median;
    median;
    q75 = Float.max (P2.quantile t.q75e) median;
    max = t.hi;
  }

let mean t =
  if t.total_weight = 0 then invalid_arg "Histogram.mean: no observations";
  t.sum /. float_of_int t.total_weight

let pp_quartiles ppf q =
  Format.fprintf ppf "{min=%.0f; q25=%.0f; median=%.0f; q75=%.0f; max=%.0f}" q.min
    q.q25 q.median q.q75 q.max
