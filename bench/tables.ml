(* Regeneration of every table in the paper's evaluation, printing measured
   values next to the paper's reported values.  The absolute numbers differ
   (our substrate is five synthetic OCaml workloads, not the 1993 C binaries
   on SPARC); the comparisons to make are the shapes: which programs win,
   which lose, and by roughly what factor. *)

module E = Lifetime.Experiments
module T = Lp_report.Table

let table1 ?scale:_ () =
  let rows =
    List.map
      (fun (r : E.table1_row) -> [ r.program; r.description ])
      (E.table1 ())
  in
  T.render ~title:"Table 1: the test programs (our synthetic equivalents)"
    ~columns:[ ("Program", T.Left); ("Description", T.Left) ]
    ~rows
    ~notes:
      [ "Input sets:" ]
    ()
  ^ String.concat "\n"
      (List.map
         (fun (r : E.table1_row) -> Printf.sprintf "  %-9s %s" r.program r.input_notes)
         (E.table1 ()))
  ^ "\n"

let table2 ?scale () =
  let rows =
    List.map
      (fun (r : E.table2_row) ->
        let m = r.measured and p = r.paper in
        [
          r.program;
          Printf.sprintf "%.1f" (float_of_int m.instructions /. 1e6);
          Printf.sprintf "%.0f" p.t2_instr_m;
          Printf.sprintf "%.2f" (float_of_int m.calls /. 1e6);
          Printf.sprintf "%.2f" p.t2_calls_m;
          Printf.sprintf "%.1f" (float_of_int m.total_bytes /. 1e6);
          Printf.sprintf "%.1f" p.t2_bytes_m;
          Printf.sprintf "%.2f" (float_of_int m.total_objects /. 1e6);
          Printf.sprintf "%.2f" p.t2_objects_m;
          Printf.sprintf "%.0f" (float_of_int m.max_bytes /. 1e3);
          Printf.sprintf "%.0f" p.t2_max_bytes_k;
          string_of_int m.max_objects;
          string_of_int p.t2_max_objects;
          T.pct m.heap_ref_pct;
          Printf.sprintf "%.0f" p.t2_heap_refs_pct;
        ])
      (E.table2 ?scale ())
  in
  T.render ~title:"Table 2: memory allocation behaviour (measured | paper)"
    ~columns:
      [
        ("Program", T.Left);
        ("Instr e6", T.Right);
        ("(paper)", T.Right);
        ("Calls e6", T.Right);
        ("(paper)", T.Right);
        ("Bytes e6", T.Right);
        ("(paper)", T.Right);
        ("Objs e6", T.Right);
        ("(paper)", T.Right);
        ("MaxKB", T.Right);
        ("(paper)", T.Right);
        ("MaxObjs", T.Right);
        ("(paper)", T.Right);
        ("Heap%", T.Right);
        ("(paper)", T.Right);
      ]
    ~rows
    ~notes:
      [
        "Our runs are scaled down ~5-20x from the paper's (simulation budget); the";
        "shape to check: GHOST has by far the largest live heap, GAWK the smallest.";
      ]
    ()

let table3 ?scale () =
  let rows =
    List.concat_map
      (fun (r : E.table3_row) ->
        let p0, p25, p50, p75, p100 = r.paper in
        [
          [
            r.program ^ " (P2)";
            T.fnum r.p2.min;
            T.fnum r.p2.q25;
            T.fnum r.p2.median;
            T.fnum r.p2.q75;
            T.fnum r.p2.max;
          ];
          [
            r.program ^ " (exact)";
            T.fnum r.exact.min;
            T.fnum r.exact.q25;
            T.fnum r.exact.median;
            T.fnum r.exact.q75;
            T.fnum r.exact.max;
          ];
          [
            r.program ^ " (paper)";
            T.fnum p0;
            T.fnum p25;
            T.fnum p50;
            T.fnum p75;
            T.fnum p100;
          ];
        ])
      (E.table3 ?scale ())
  in
  T.render
    ~title:
      "Table 3: object lifetime quantiles in bytes (byte-weighted; P2 approximation \
       vs exact, as the paper's footnote discusses)"
    ~columns:
      [
        ("Program", T.Left);
        ("0% (min)", T.Right);
        ("25%", T.Right);
        ("50%", T.Right);
        ("75%", T.Right);
        ("100% (max)", T.Right);
      ]
    ~rows
    ~notes:
      [
        "Shape: most objects die within a few hundred / thousand bytes; the maximum";
        "is orders of magnitude above the median in every program.";
      ]
    ()

let table4 ?scale () =
  let rows =
    List.map
      (fun (r : E.table4_row) ->
        let e = r.self and t = r.true_ and p = r.paper in
        [
          r.program;
          string_of_int r.total_sites;
          Printf.sprintf "%d" p.t4_total_sites;
          T.pct (Lifetime.Evaluate.actual_short_pct e);
          Printf.sprintf "%.0f" p.t4_actual_pct;
          string_of_int e.sites_used;
          T.pct (Lifetime.Evaluate.predicted_pct e);
          Printf.sprintf "%.1f" p.t4_self_pred_pct;
          Printf.sprintf "%.2f" (Lifetime.Evaluate.error_pct e);
          string_of_int t.sites_used;
          T.pct (Lifetime.Evaluate.predicted_pct t);
          Printf.sprintf "%.1f" p.t4_true_pred_pct;
          Printf.sprintf "%.2f" (Lifetime.Evaluate.error_pct t);
          Printf.sprintf "%.2f" p.t4_true_err_pct;
        ])
      (E.table4 ?scale ())
  in
  T.render
    ~title:
      "Table 4: bytes predicted short-lived from allocation site and size \
       (self = trained on the test input, true = trained on the other input)"
    ~columns:
      [
        ("Program", T.Left);
        ("Sites", T.Right);
        ("(paper)", T.Right);
        ("Actual%", T.Right);
        ("(paper)", T.Right);
        ("SelfUsed", T.Right);
        ("Self%", T.Right);
        ("(paper)", T.Right);
        ("SelfErr%", T.Right);
        ("TrueUsed", T.Right);
        ("True%", T.Right);
        ("(paper)", T.Right);
        ("TrueErr%", T.Right);
        ("(paper)", T.Right);
      ]
    ~rows
    ~notes:
      [
        "Shape: >90% of bytes are actually short-lived everywhere; GAWK's true";
        "prediction matches self (same script, new data); PERL's collapses (two";
        "different scripts); self prediction never errs.";
      ]
    ()

let table5 ?scale () =
  let rows =
    List.map
      (fun (r : E.table5_row) ->
        let actual, predicted, sites = r.paper in
        [
          r.program;
          T.pct (Lifetime.Evaluate.actual_short_pct r.eval);
          Printf.sprintf "%.0f" actual;
          T.pct (Lifetime.Evaluate.predicted_pct r.eval);
          Printf.sprintf "%.0f" predicted;
          string_of_int r.eval.sites_used;
          string_of_int sites;
        ])
      (E.table5 ?scale ())
  in
  T.render
    ~title:"Table 5: prediction from object size alone (self prediction)"
    ~columns:
      [
        ("Program", T.Left);
        ("Actual%", T.Right);
        ("(paper)", T.Right);
        ("Predicted%", T.Right);
        ("(paper)", T.Right);
        ("Sites", T.Right);
        ("(paper)", T.Right);
      ]
    ~rows
    ~notes:
      [ "Shape: size alone predicts far less than site+size (compare Table 4)." ]
    ()

let table6 ?scale () =
  let rows =
    List.concat_map
      (fun (r : E.table6_row) ->
        let paper_cells, jump = r.paper in
        let measured =
          r.program
          :: List.map (fun (_, c) -> Printf.sprintf "%.0f/%.0f" c.E.pred_pct c.E.new_ref_pct)
               r.by_length
        in
        let paper_row =
          Printf.sprintf "%s (paper, jump@%d)" r.program jump
          :: List.map (fun (p, n) -> Printf.sprintf "%.0f/%.0f" p n) paper_cells
        in
        [ measured; paper_row ])
      (E.table6 ?scale ())
  in
  T.render
    ~title:
      "Table 6: effect of call-chain length on prediction (predicted% / new-ref% \
       per cell; lengths 1-7 then the complete chain)"
    ~columns:
      ([ ("Program", T.Left) ]
      @ List.map (fun n -> (string_of_int n, T.Right)) [ 1; 2; 3; 4; 5; 6; 7 ]
      @ [ ("inf", T.Right) ])
    ~rows
    ~notes:
      [
        "Shape: prediction improves with chain depth and saturates by length ~4;";
        "wrapper layers (xmalloc etc.) make length-1 chains weak.";
      ]
    ()

let table7 ?scale () =
  let rows =
    List.map
      (fun (r : E.table7_row) ->
        let p_allocs, p_alloc_pct, p_bytes, p_bytes_pct = r.paper in
        [
          r.program;
          Printf.sprintf "%.1f" (float_of_int r.total_allocs /. 1000.);
          Printf.sprintf "%.1f" p_allocs;
          T.pct r.arena_alloc_pct;
          T.pct p_alloc_pct;
          Printf.sprintf "%.0f" (float_of_int r.total_bytes /. 1024.);
          Printf.sprintf "%.0f" p_bytes;
          T.pct r.arena_bytes_pct;
          T.pct p_bytes_pct;
        ])
      (E.table7 ?scale ())
  in
  T.render
    ~title:"Table 7: objects and bytes placed in arenas (true prediction)"
    ~columns:
      [
        ("Program", T.Left);
        ("Allocs K", T.Right);
        ("(paper)", T.Right);
        ("Arena%", T.Right);
        ("(paper)", T.Right);
        ("Bytes KB", T.Right);
        ("(paper)", T.Right);
        ("ArenaB%", T.Right);
        ("(paper)", T.Right);
      ]
    ~rows
    ~notes:
      [
        "Shape: GAWK nearly everything in arenas; GHOST high alloc% but much lower";
        "byte% (its ~6KB band buffers exceed the 4KB arenas); CFRAC low (pollution /";
        "unmapped sites).";
      ]
    ()

let table8 ?scale () =
  let rows =
    List.map
      (fun (r : E.table8_row) ->
        let p_ff, p_self, p_self_pct, p_true, p_true_pct = r.paper in
        let pct a b = 100. *. float_of_int a /. float_of_int (max 1 b) in
        [
          r.program;
          T.kbytes r.first_fit_heap;
          Printf.sprintf "%.0f" p_ff;
          T.kbytes r.self_arena_heap;
          Printf.sprintf "%.0f" p_self;
          T.pct (pct r.self_arena_heap r.first_fit_heap);
          T.pct p_self_pct;
          T.kbytes r.true_arena_heap;
          Printf.sprintf "%.0f" p_true;
          T.pct (pct r.true_arena_heap r.first_fit_heap);
          T.pct p_true_pct;
        ])
      (E.table8 ?scale ())
  in
  T.render
    ~title:
      "Table 8: maximum heap size, first-fit vs lifetime-predicting arena \
       allocator (KB; arena figures include the 64KB arena area)"
    ~columns:
      [
        ("Program", T.Left);
        ("FF KB", T.Right);
        ("(paper)", T.Right);
        ("SelfKB", T.Right);
        ("(paper)", T.Right);
        ("Self/FF%", T.Right);
        ("(paper)", T.Right);
        ("TrueKB", T.Right);
        ("(paper)", T.Right);
        ("True/FF%", T.Right);
        ("(paper)", T.Right);
      ]
    ~rows
    ~notes:
      [
        "Shape: small-heap programs pay for the 64KB arena area (ratios > 100%);";
        "the big-heap program (GHOST) wins (ratio < 100%).";
      ]
    ()

let table9 ?scale () =
  let rows =
    List.map
      (fun (r : E.table9_row) ->
        let (pb, pf), (pfa, pff), (pa4, pf4), (pac, pfc) = r.paper in
        let cell (a, f) (pa, pf) =
          Printf.sprintf "%.0f/%.0f (%.0f/%.0f)" a f pa pf
        in
        [
          r.program;
          cell r.bsd (pb, pf);
          cell r.first_fit (pfa, pff);
          cell r.arena_len4 (pa4, pf4);
          cell r.arena_cce (pac, pfc);
        ])
      (E.table9 ?scale ())
  in
  T.render
    ~title:
      "Table 9: average instructions per alloc/free, measured (paper) — cost-model \
       figures, calibrated to the paper's BSD and first-fit measurements"
    ~columns:
      [
        ("Program", T.Left);
        ("BSD a/f", T.Right);
        ("First-fit a/f", T.Right);
        ("Arena len-4 a/f", T.Right);
        ("Arena cce a/f", T.Right);
      ]
    ~rows
    ~notes:
      [
        "Shape: where prediction thrives (GAWK) arena allocation beats both";
        "baselines decisively; where it fails or misses (CFRAC) the prediction";
        "overhead plus first-fit fallback makes it the slowest.";
      ]
    ()

(* -- ablations (design choices the paper discusses but does not sweep) ------- *)

let threshold_ablation ?scale () =
  let thresholds = [ 1024; 4096; 16384; 32768; 65536; 262144; 1048576 ] in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "Ablation: short-lived threshold sweep (Section 4.1 asks \"how short is\n\
     short-lived?\"). True prediction; predicted% rises with the threshold,\n\
     and so does exposure to error.\n";
  List.iter
    (fun program ->
      let points = E.threshold_sweep ?scale ~program ~thresholds () in
      Buffer.add_string buf
        (T.render
           ~title:(Printf.sprintf "  %s" program)
           ~columns:
             [
               ("Threshold", T.Right);
               ("Predicted%", T.Right);
               ("Error%", T.Right);
               ("Sites", T.Right);
             ]
           ~rows:
             (List.map
                (fun (p : E.threshold_point) ->
                  [
                    string_of_int p.threshold;
                    T.pct p.predicted_pct;
                    Printf.sprintf "%.3f" p.error_pct;
                    string_of_int p.sites;
                  ])
                points)
           ()))
    [ "gawk"; "ghost"; "cfrac" ];
  Buffer.contents buf

let geometry_ablation ?scale () =
  let geometries =
    [ (16, 4096); (8, 8192); (4, 16384); (32, 2048); (16, 8192); (32, 4096) ]
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "Ablation: arena geometry (count x size).  The paper blocks 64KB into 16 x\n\
     4KB; GHOST's ~6KB bands only fit once arenas reach 8KB.\n";
  List.iter
    (fun program ->
      let points = E.geometry_sweep ?scale ~program ~geometries () in
      Buffer.add_string buf
        (T.render
           ~title:(Printf.sprintf "  %s" program)
           ~columns:
             [
               ("Arenas", T.Right);
               ("Size", T.Right);
               ("ArenaBytes%", T.Right);
               ("Heap/FF%", T.Right);
             ]
           ~rows:
             (List.map
                (fun (p : E.geometry_point) ->
                  [
                    string_of_int p.n_arenas;
                    string_of_int p.arena_size;
                    T.pct p.arena_bytes_pct;
                    T.pct p.heap_vs_first_fit_pct;
                  ])
                points)
           ()))
    [ "ghost"; "gawk" ];
  Buffer.contents buf

let rounding_ablation ?scale () =
  let roundings = [ 1; 2; 4; 8; 16; 32 ] in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "Ablation: size rounding for cross-run site mapping (Section 4.1: rounding\n\
     to 4 mapped best; coarser rounding loses size information).\n";
  List.iter
    (fun program ->
      let points = E.rounding_sweep ?scale ~program ~roundings () in
      Buffer.add_string buf
        (T.render
           ~title:(Printf.sprintf "  %s (true prediction)" program)
           ~columns:
             [ ("Round to", T.Right); ("Predicted%", T.Right); ("Error%", T.Right) ]
           ~rows:
             (List.map
                (fun (p : E.rounding_point) ->
                  [
                    string_of_int p.rounding;
                    T.pct p.predicted_pct;
                    Printf.sprintf "%.3f" p.error_pct;
                  ])
                points)
           ()))
    [ "gawk"; "perl" ];
  Buffer.contents buf

let policy_ablation ?scale () =
  let fractions = [ 0.5; 0.8; 0.9; 0.95; 0.99; 1.0 ] in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "Ablation: site-selection policy.  The paper requires ALL training objects\n\
     short-lived; accepting sites with a lower short fraction buys coverage at\n\
     the price of error (Section 4.1's cost-of-incorrect-prediction discussion).\n";
  List.iter
    (fun program ->
      let points = E.policy_sweep ?scale ~program ~fractions () in
      Buffer.add_string buf
        (T.render
           ~title:(Printf.sprintf "  %s (true prediction)" program)
           ~columns:
             [ ("MinShortFrac", T.Right); ("Predicted%", T.Right); ("Error%", T.Right) ]
           ~rows:
             (List.map
                (fun (p : E.policy_point) ->
                  [
                    Printf.sprintf "%.2f" p.min_short_fraction;
                    T.pct p.predicted_pct;
                    Printf.sprintf "%.3f" p.error_pct;
                  ])
                points)
           ()))
    [ "espresso"; "perl" ];
  Buffer.contents buf

let locality_experiment ?scale () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "Locality experiment (beyond the paper's tables): the introduction claims\n\
     arena segregation improves reference locality; here the trace's heap\n\
     reference stream replays through a small cache at each allocator's\n\
     addresses (true prediction).\n";
  List.iter
    (fun cache_kb ->
      let rows = E.locality ?scale ~cache_kb () in
      Buffer.add_string buf
        (T.render
           ~title:(Printf.sprintf "  %d KB, 2-way, 32-byte lines (miss %%)" cache_kb)
           ~columns:
             [
               ("Program", T.Left);
               ("Refs e6", T.Right);
               ("FF miss%", T.Right);
               ("BSD miss%", T.Right);
               ("Arena miss%", T.Right);
               ("FF pages", T.Right);
               ("BSD pages", T.Right);
               ("Arena pages", T.Right);
             ]
           ~rows:
             (List.map
                (fun (r : E.locality_row) ->
                  [
                    r.program;
                    Printf.sprintf "%.1f" (float_of_int r.refs /. 1e6);
                    Printf.sprintf "%.2f" r.ff_miss_pct;
                    Printf.sprintf "%.2f" r.bsd_miss_pct;
                    Printf.sprintf "%.2f" r.arena_miss_pct;
                    string_of_int r.ff_pages;
                    string_of_int r.bsd_pages;
                    string_of_int r.arena_pages;
                  ])
                rows)
           ()))
    [ 8; 64 ];
  Buffer.contents buf

let generational_experiment ?scale () =
  let rows = E.generational ?scale () in
  T.render
    ~title:
      "Generational-collector experiment (beyond the paper's tables): a 128 KB \
       nursery copying collector, with and without pretenuring objects the \
       short-lived-site database does not predict (true prediction)"
    ~columns:
      [
        ("Program", T.Left);
        ("Minor GCs", T.Right);
        ("Copied KB", T.Right);
        ("+pret GCs", T.Right);
        ("+pret KB", T.Right);
        ("Copy saved%", T.Right);
        ("Pretenured", T.Right);
        ("TenGarbage KB", T.Right);
      ]
    ~rows:
      (List.map
         (fun (r : E.generational_row) ->
           [
             r.program;
             string_of_int r.baseline.minor_gcs;
             string_of_int (r.baseline.copied_bytes / 1024);
             string_of_int r.pretenured.minor_gcs;
             string_of_int (r.pretenured.copied_bytes / 1024);
             T.pct r.copy_reduction_pct;
             string_of_int r.pretenured.pretenured;
             string_of_int (r.pretenured.tenured_garbage_bytes / 1024);
           ])
         rows)
    ~notes:
      [
        "The paper's §1.1 claim, made measurable: pretenuring by predicted";
        "lifetime removes nursery copying of long-lived objects; mispredictions";
        "surface as tenured garbage a major collection must reclaim.";
      ]
    ()

let type_experiment ?scale () =
  let rows = E.by_type ?scale () in
  T.render
    ~title:
      "Type-based prediction (the paper's Section 2 future work): predicted \
       short-lived bytes % when sites are keyed by the object's type tag, vs \
       the paper's keys (self prediction uses true-prediction training here)"
    ~columns:
      [
        ("Program", T.Left);
        ("Tagged%", T.Right);
        ("Type only", T.Right);
        ("Type+size", T.Right);
        ("Size only", T.Right);
        ("Site+size", T.Right);
      ]
    ~rows:
      (List.map
         (fun (r : E.type_row) ->
           [
             r.program;
             T.pct r.tagged_bytes_pct;
             T.pct r.type_only_pct;
             T.pct r.type_size_pct;
             T.pct r.size_only_pct;
             T.pct r.site_size_pct;
           ])
         rows)
    ~notes:
      [
        "Type tags come for free in typed languages; here they are the workloads'";
        "constructor-wrapper names.  The finding qualifies the paper's conjecture:";
        "types predict well only where a type is lifetime-homogeneous (cfrac's";
        "bignums, ghost's buffers); an interpreter's value cells mix lifetimes";
        "inside one type, so the call-chain context remains essential there.";
      ]
    ()

let oracle_experiment ?scale () =
  let rows = E.oracle_comparison ?scale () in
  T.render
    ~title:
      "Oracle comparison (offline self / offline cross / online adaptive): \
       arena replay per oracle at equal charged prediction cost; overhead \
       relative to the self-trained (oracle-bound) predictor"
    ~columns:
      [
        ("Workload", T.Left);
        ("Oracle", T.Left);
        ("Instr/alloc", T.Right);
        ("vs self%", T.Right);
        ("Predictions", T.Right);
        ("MispShort%", T.Right);
        ("MispLong%", T.Right);
      ]
    ~rows:
      (List.map
         (fun (r : E.oracle_row) ->
           [
             r.program;
             r.oracle;
             Printf.sprintf "%.1f" r.instr_per_alloc;
             Printf.sprintf "%+.1f" r.overhead_pct;
             string_of_int r.predictions;
             Printf.sprintf "%.2f" r.mispredict_short_pct;
             Printf.sprintf "%.2f" r.mispredict_long_pct;
           ])
         rows)
    ~notes:
      [
        "self = trained on the test input (the oracle bound); cross = trained on";
        "the other input (the paper's deployable mode); online = profile-free,";
        "learning during the replay.  Mispredict rates are per consultation.";
      ]
    ()

let allocator_ablation ?scale ?allocators () =
  let rows = E.allocator_policies ?scale ?allocators () in
  (* one heap + one cost column per registry backend the ablation ran;
     every row carries the same cells in the same order *)
  let names =
    match rows with [] -> [] | r :: _ -> List.map fst r.E.cells
  in
  T.render
    ~title:
      "Ablation: allocation policies side by side (the paper chose first fit \
       as baseline for its 'relatively good memory utilization'); every \
       non-predicting registry backend gets a column"
    ~columns:
      (("Program", T.Left)
      :: List.concat_map
           (fun n -> [ (n ^ " KB", T.Right); (n ^ " a+f", T.Right) ])
           names)
    ~rows:
      (List.map
         (fun (r : E.allocator_row) ->
           r.program
           :: List.concat_map
                (fun (_, (c : E.allocator_cell)) ->
                  [
                    string_of_int (c.heap / 1024); Printf.sprintf "%.0f" c.cost;
                  ])
                r.E.cells)
         rows)
    ~notes:
      [
        "Best fit packs no tighter here but pays a whole-list scan per alloc;";
        "BSD buckets and segregated fit trade internal fragmentation for";
        "near-constant-time operations.";
      ]
    ()
