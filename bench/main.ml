(* Benchmark harness: regenerates every table of the paper's evaluation
   (run with no arguments), one table (--table N), the ablation sweeps
   (--ablation NAME | --ablations), plus Bechamel micro-benchmarks of the
   allocator fast paths (--micro).  --scale S shrinks the workload inputs
   for quick runs. *)

let tables : (int * string * (?scale:float -> unit -> string)) list =
  [
    (1, "the test programs", Tables.table1);
    (2, "allocation behaviour", Tables.table2);
    (3, "lifetime quantiles", Tables.table3);
    (4, "site+size prediction", Tables.table4);
    (5, "size-only prediction", Tables.table5);
    (6, "call-chain length sweep", Tables.table6);
    (7, "arena placement", Tables.table7);
    (8, "maximum heap sizes", Tables.table8);
    (9, "instructions per alloc/free", Tables.table9);
  ]

let ablations : (string * (?scale:float -> unit -> string)) list =
  [
    ("threshold", Tables.threshold_ablation);
    ("geometry", Tables.geometry_ablation);
    ("rounding", Tables.rounding_ablation);
    ("policy", Tables.policy_ablation);
    ("locality", Tables.locality_experiment);
    ("generational", Tables.generational_experiment);
    ("types", Tables.type_experiment);
    ("allocators", fun ?scale () -> Tables.allocator_ablation ?scale ());
    ("oracle", Tables.oracle_experiment);
  ]

(* -- Bechamel micro-benchmarks: the allocator fast paths whose costs the
   instruction model of Table 9 charges symbolically.  Here they run for
   real, on this machine: one benchmark per evaluation table whose
   operations they implement. -- *)

let micro_tests () =
  let open Bechamel in
  [
    Test.make ~name:"table8.first_fit_alloc_free"
      (Staged.stage (fun () ->
           let ff = Lp_allocsim.First_fit.create () in
           let addrs =
             Array.init 64 (fun i -> Lp_allocsim.First_fit.alloc ff (16 + (i mod 7 * 8)))
           in
           Array.iter (Lp_allocsim.First_fit.free ff) addrs));
    Test.make ~name:"table9.bsd_alloc_free"
      (Staged.stage (fun () ->
           let b = Lp_allocsim.Bsd.create () in
           let addrs =
             Array.init 64 (fun i -> Lp_allocsim.Bsd.alloc b (16 + (i mod 7 * 8)))
           in
           Array.iter (Lp_allocsim.Bsd.free b) addrs));
    Test.make ~name:"ablation.segfit_alloc_free"
      (Staged.stage (fun () ->
           let s = Lp_allocsim.Segfit.create () in
           let addrs =
             Array.init 64 (fun i -> Lp_allocsim.Segfit.alloc s (16 + (i mod 7 * 8)))
           in
           Array.iter (Lp_allocsim.Segfit.free s) addrs));
    Test.make ~name:"table7.arena_bump_alloc"
      (Staged.stage
         (let a = Lp_allocsim.Arena.create () in
          fun () ->
            for i = 0 to 63 do
              let addr =
                Lp_allocsim.Arena.alloc a ~size:(16 + (i mod 7 * 8)) ~predicted:true
              in
              Lp_allocsim.Arena.free a addr
            done));
    Test.make ~name:"table3.p2_observe"
      (Staged.stage
         (let est = Lp_quantile.P2.create 0.5 in
          let x = ref 0. in
          fun () ->
            x := !x +. 1.;
            Lp_quantile.P2.observe est !x));
    Test.make ~name:"table4.chain_cycle_elimination"
      (Staged.stage
         (let raw = [| 9; 4; 3; 4; 3; 2; 1; 0 |] in
          fun () -> ignore (Lp_callchain.Chain.eliminate_cycles raw)));
    Test.make ~name:"table6.site_hash_lookup"
      (Staged.stage
         (let tbl = Lp_callchain.Func.create_table () in
          let f = Lp_callchain.Func.intern tbl "f" in
          let site =
            Lp_callchain.Site.make Lp_callchain.Site.Complete_chain ~raw_chain:[| f |]
              ~key:0 ~size:16
          in
          let module T = Lp_callchain.Site.Table in
          let table = T.create 64 in
          T.replace table site ();
          fun () -> ignore (T.mem table site)));
  ]

let micro_benchmarks () =
  let open Bechamel in
  let open Toolkit in
  Printf.printf
    "\nBechamel micro-benchmarks (real CPU cost of the simulated fast paths):\n%!";
  let cfg = Benchmark.cfg ~quota:(Time.second 0.25) () in
  let grouped = Test.make_grouped ~name:"repro" (micro_tests ()) in
  let results = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      Instance.monotonic_clock results
  in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) ols [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ ns ] -> Printf.printf "  %-44s %12.1f ns/run\n%!" name ns
      | _ -> Printf.printf "  %-44s (no estimate)\n%!" name)
    (List.sort compare rows)

let () =
  let scale = ref 1.0 in
  let oracle_table = ref false in
  let which_table = ref None in
  let which_ablation = ref None in
  let run_ablations = ref true in
  let run_micro = ref true in
  let timings = ref false in
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        scale := float_of_string v;
        parse rest
    | "--timings" :: rest ->
        timings := true;
        parse rest
    | "--domains" :: v :: rest ->
        Lifetime.Parallel.set_domains (int_of_string v);
        parse rest
    | "--table" :: v :: rest ->
        which_table := Some (int_of_string v);
        parse rest
    | "--ablation" :: v :: rest ->
        which_ablation := Some v;
        parse rest
    | "--oracle-table" :: rest ->
        (* the markdown serialization EXPERIMENTS.md commits; printed bare
           so the drift-gating CI job can regenerate and compare it *)
        oracle_table := true;
        parse rest
    | "--ablations" :: rest ->
        run_ablations := true;
        parse rest
    | "--tables-only" :: rest ->
        run_ablations := false;
        run_micro := false;
        parse rest
    | "--micro" :: rest ->
        run_micro := true;
        parse rest
    | "--help" :: _ ->
        print_endline
          "usage: bench/main.exe [--scale S] [--table N] [--tables-only] \
           [--ablation threshold|geometry|rounding|policy|locality|\
           generational|types|allocators|oracle] [--oracle-table] [--micro] \
           [--timings] [--domains N]";
        exit 0
    | other :: _ ->
        Printf.eprintf "unknown argument %s (try --help)\n" other;
        exit 1
  in
  parse (List.tl args);
  if !timings then Lp_obs.Timings.set_enabled true;
  if !oracle_table then begin
    print_string (Lifetime.Experiments.oracle_markdown ());
    exit 0
  end;
  let scale = !scale in
  Printf.printf
    "Reproduction of Barrett & Zorn, \"Using Lifetime Predictors to Improve\n\
     Memory Allocation Performance\" (PLDI 1993) — evaluation tables.\n\
     Workload scale: %.2f.  Format: measured value, with the paper's value\n\
     alongside in the '(paper)' columns.\n\n%!"
    scale;
  (match (!which_table, !which_ablation) with
  | Some _, _ | None, Some _ -> run_micro := false
  | None, None -> ());
  (match (!which_table, !which_ablation) with
  | Some n, _ ->
      let _, _, f =
        try List.find (fun (i, _, _) -> i = n) tables
        with Not_found ->
          Printf.eprintf "no such table: %d\n" n;
          exit 1
      in
      print_string (f ?scale:(Some scale) ())
  | None, Some name ->
      let f =
        try List.assoc name ablations
        with Not_found ->
          Printf.eprintf "no such ablation: %s\n" name;
          exit 1
      in
      print_string (f ?scale:(Some scale) ())
  | None, None ->
      List.iter
        (fun (_, _, f) ->
          print_string (f ?scale:(Some scale) ());
          print_newline ())
        tables;
      if !run_ablations then
        List.iter
          (fun (_, f) ->
            print_string (f ?scale:(Some scale) ());
            print_newline ())
          ablations);
  if !run_micro then micro_benchmarks ();
  if !timings then Format.eprintf "%a@?" Lp_obs.Timings.pp_report ()
