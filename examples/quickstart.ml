(* Quickstart: the whole lifetime-prediction pipeline on a toy program.

   1. Write a program against the instrumented runtime (every simulated heap
      allocation goes through Lp_ialloc.Runtime).
   2. Run it once on a training input; collect its allocation trace.
   3. Train a predictor: the set of allocation sites (call-chain + size)
      whose objects were all short-lived.
   4. Run the program on a different input and replay that trace through
      the lifetime-predicting arena allocator, against a first-fit baseline.

   Run with:  dune exec examples/quickstart.exe *)

module Rt = Lp_ialloc.Runtime

(* A toy text-processing "program": splits lines into words (short-lived
   cells), keeps a running dictionary of distinct words (long-lived nodes).
   The point: the two behaviours happen at different call sites, which is
   exactly what the predictor learns. *)
let toy_program ~input ~lines =
  let rt = Rt.create ~program:"toy" ~input () in
  let main = Rt.func rt "main" in
  let split_words = Rt.func rt "split_words" in
  let intern = Rt.func rt "intern_word" in
  let seen = Hashtbl.create 64 in
  Rt.in_frame rt main (fun () ->
      List.iter
        (fun line ->
          (* short-lived: a cell per word, dead as soon as the word is
             processed *)
          let cells =
            Rt.in_frame rt split_words (fun () ->
                List.map
                  (fun w -> (w, Rt.alloc rt ~size:(16 + String.length w)))
                  (String.split_on_char ' ' line))
          in
          List.iter
            (fun (w, cell) ->
              Rt.touch rt cell 2;
              (* long-lived: a dictionary node per distinct word *)
              if not (Hashtbl.mem seen w) then begin
                Hashtbl.replace seen w ();
                let node =
                  Rt.in_frame rt intern (fun () ->
                      Rt.alloc rt ~size:(24 + String.length w))
                in
                Rt.touch rt node 1
              end;
              Rt.free rt cell)
            cells)
        lines);
  Rt.finish rt

let some_lines seed n =
  let rng = Lp_workloads.Prng.of_string seed in
  let words = Lp_workloads.Corpus.dictionary rng 120 in
  Array.to_list (Lp_workloads.Corpus.lines rng ~words ~n)

let () =
  print_endline "== 1. trace a training run ==";
  let train = toy_program ~input:"train" ~lines:(some_lines "quickstart-a" 400) in
  let stats = Lp_trace.Stats.compute train in
  Printf.printf "training run: %d objects, %d bytes, %d distinct call chains\n\n"
    stats.total_objects stats.total_bytes stats.distinct_chains;

  print_endline "== 2. train a predictor ==";
  let config = Lifetime.Config.default in
  let table = Lifetime.Train.collect ~config train in
  let predictor = Lifetime.Predictor.build ~config ~funcs:train.funcs table in
  Printf.printf "%d sites seen, %d predict short-lived objects:\n"
    (Lifetime.Train.total_sites table)
    (Lifetime.Predictor.size predictor);
  Lifetime.Predictor.iter_keys predictor (fun key ->
      print_endline ("  " ^ Lifetime.Portable.to_string key));
  print_newline ();

  print_endline "== 3. evaluate on a different input (true prediction) ==";
  let test = toy_program ~input:"test" ~lines:(some_lines "quickstart-b" 1500) in
  let e = Lifetime.Evaluate.run ~config predictor test in
  Printf.printf "actual short-lived bytes:    %.1f%%\n"
    (Lifetime.Evaluate.actual_short_pct e);
  Printf.printf "predicted short-lived bytes: %.1f%% (error %.2f%%)\n\n"
    (Lifetime.Evaluate.predicted_pct e)
    (Lifetime.Evaluate.error_pct e);

  print_endline "== 4. simulate the allocators on the test trace ==";
  let sim = Lifetime.Simulate.run ~config ~oracle:(Lifetime.Oracle.static predictor) ~test () in
  let report name (m : Lp_allocsim.Metrics.t) =
    Printf.printf "%-22s heap %6d bytes, %5.1f instr/alloc, %5.1f instr/free\n" name
      m.max_heap m.instr_per_alloc m.instr_per_free
  in
  report "first-fit:" (Lifetime.Simulate.first_fit sim);
  report "bsd buckets:" (Lifetime.Simulate.bsd sim);
  report "arena (predicting):" (Lifetime.Simulate.arena_len4 sim);
  Printf.printf
    "\narena placed %.1f%% of allocations (%.1f%% of bytes) in its 64 KB arena area.\n"
    (Lp_allocsim.Metrics.arena_alloc_pct (Lifetime.Simulate.arena_len4 sim))
    (Lp_allocsim.Metrics.arena_bytes_pct (Lifetime.Simulate.arena_len4 sim))
