(* Allocator shootout: every workload through every allocator, with true
   prediction — a compact re-run of the simulation half of the paper
   (Tables 7-9) at reduced scale.

   Run with:  dune exec examples/allocator_shootout.exe *)

let () =
  let config = Lifetime.Config.default in
  let scale = 0.15 in
  Printf.printf "running all five workloads at scale %.2f...\n\n%!" scale;
  let rows =
    List.map
      (fun program ->
        let train = Lp_workloads.Registry.trace ~scale ~program ~input:"train" () in
        let test = Lp_workloads.Registry.trace ~scale ~program ~input:"test" () in
        let table = Lifetime.Train.collect ~config train in
        let predictor = Lifetime.Predictor.build ~config ~funcs:train.funcs table in
        let sim = Lifetime.Simulate.run ~config ~oracle:(Lifetime.Oracle.static predictor) ~test () in
        let af (m : Lp_allocsim.Metrics.t) = m.instr_per_alloc +. m.instr_per_free in
        [
          program;
          Printf.sprintf "%.1f" (Lp_allocsim.Metrics.arena_alloc_pct (Lifetime.Simulate.arena_len4 sim));
          Printf.sprintf "%.1f" (Lp_allocsim.Metrics.arena_bytes_pct (Lifetime.Simulate.arena_len4 sim));
          Printf.sprintf "%.0f" (af (Lifetime.Simulate.bsd sim));
          Printf.sprintf "%.0f" (af (Lifetime.Simulate.first_fit sim));
          Printf.sprintf "%.0f" (af (Lifetime.Simulate.arena_len4 sim));
          string_of_int ((Lifetime.Simulate.first_fit sim).max_heap / 1024);
          string_of_int ((Lifetime.Simulate.arena_len4 sim).max_heap / 1024);
        ])
      Lp_workloads.Registry.names
  in
  print_string
    (Lp_report.Table.render
       ~title:"all workloads, all allocators (true prediction, reduced scale)"
       ~columns:
         [
           ("Program", Lp_report.Table.Left);
           ("Arena alloc%", Lp_report.Table.Right);
           ("Arena byte%", Lp_report.Table.Right);
           ("BSD a+f", Lp_report.Table.Right);
           ("FF a+f", Lp_report.Table.Right);
           ("Arena a+f", Lp_report.Table.Right);
           ("FF heap KB", Lp_report.Table.Right);
           ("Arena heap KB", Lp_report.Table.Right);
         ]
       ~rows
       ~notes:
         [
           "a+f = average instructions per allocation plus per free.";
           "Where prediction works (gawk) the arena allocator dominates; where";
           "training mispredicts (cfrac) pollution sends it back to first-fit.";
         ]
       ())
