(* Interpreter tuning: the paper's motivating scenario on the GAWK workload.

   Interpreters are allocation-intensive (every evaluated expression makes
   value cells) and perfect candidates for lifetime prediction: the cells
   die almost immediately, while the interpreter's tables live on.  We train
   on a small dictionary, then measure on a large one — the paper's GAWK
   case, where true prediction matches self prediction because only the
   data changed.

   Run with:  dune exec examples/interpreter_tuning.exe *)

let () =
  let config = Lifetime.Config.default in
  print_endline "running gawk (paragraph filling + word frequency) on two inputs...";
  let train = Lp_workloads.Registry.trace ~scale:0.2 ~program:"gawk" ~input:"train" () in
  let test = Lp_workloads.Registry.trace ~scale:0.2 ~program:"gawk" ~input:"test" () in
  let s = Lp_trace.Stats.compute test in
  Printf.printf "test run: %d objects, %.1f MB allocated, %d B max live\n\n"
    s.total_objects
    (float_of_int s.total_bytes /. 1e6)
    s.max_bytes;

  let predictor, e = Lifetime.Evaluate.train_and_evaluate ~config ~train ~test in
  Printf.printf "trained on the small dictionary: %d short-lived sites\n"
    (Lifetime.Predictor.size predictor);
  Printf.printf "on the large dictionary they cover %.1f%% of bytes (error %.2f%%)\n\n"
    (Lifetime.Evaluate.predicted_pct e)
    (Lifetime.Evaluate.error_pct e);

  let sim = Lifetime.Simulate.run ~config ~oracle:(Lifetime.Oracle.static predictor) ~test () in
  let row name (m : Lp_allocsim.Metrics.t) =
    [
      name;
      string_of_int (m.max_heap / 1024);
      Printf.sprintf "%.1f" m.instr_per_alloc;
      Printf.sprintf "%.1f" m.instr_per_free;
      Printf.sprintf "%.1f" (m.instr_per_alloc +. m.instr_per_free);
    ]
  in
  print_string
    (Lp_report.Table.render ~title:"gawk under three allocators (true prediction)"
       ~columns:
         [
           ("Allocator", Lp_report.Table.Left);
           ("Heap KB", Lp_report.Table.Right);
           ("instr/alloc", Lp_report.Table.Right);
           ("instr/free", Lp_report.Table.Right);
           ("a+f", Lp_report.Table.Right);
         ]
       ~rows:
         [
           row "first-fit" (Lifetime.Simulate.first_fit sim);
           row "bsd" (Lifetime.Simulate.bsd sim);
           row "arena (len-4)" (Lifetime.Simulate.arena_len4 sim);
           row "arena (cce)" (Lifetime.Simulate.arena_cce sim);
         ]
       ());
  Printf.printf
    "\nthe arena allocator turns ~%.0f%% of a tree-walking interpreter's\n\
     allocation traffic into pointer bumps — the paper's Table 9 GAWK row.\n"
    (Lp_allocsim.Metrics.arena_alloc_pct (Lifetime.Simulate.arena_len4 sim))
