(* Custom workload: bring your own program to the pipeline.

   This example builds a workload the library has never seen — a tiny
   order-book simulator: orders arrive (short-lived request buffers), some
   rest in the book (medium-lived), trades append to a log (long-lived) —
   and walks it through training, the call-chain-length experiment of
   Table 6, and the arena simulation.  Everything needed is the public API
   of Lp_ialloc.Runtime plus the Lifetime modules.

   Run with:  dune exec examples/custom_workload.exe *)

module Rt = Lp_ialloc.Runtime

let order_book ~input ~n_orders =
  let rt = Rt.create ~program:"orderbook" ~input () in
  let main = Rt.func rt "main" in
  let parse = Rt.func rt "parse_order" in
  let submit = Rt.func rt "submit" in
  let book_insert = Rt.func rt "book_insert" in
  let log_trade = Rt.func rt "log_trade" in
  (* every path allocates its 48-byte record through this one helper, the
     way real programs funnel allocation through a pool layer: a length-1
     call-chain sees only [pool_alloc] and cannot tell the behaviours
     apart (the Table 6 effect) *)
  let pool_alloc_f = Rt.func rt "pool_alloc" in
  let pool_alloc () = Rt.in_frame rt pool_alloc_f (fun () -> Rt.alloc rt ~size:48) in
  let rng = Lp_workloads.Prng.of_string ("orderbook-" ^ input) in
  let book = Queue.create () in
  Rt.in_frame rt main (fun () ->
      for _ = 1 to n_orders do
        (* request buffer: parsed and discarded (short-lived) *)
        let buf = Rt.in_frame rt parse (fun () -> pool_alloc ()) in
        Rt.touch rt buf 4;
        Rt.in_frame rt submit (fun () ->
            if Lp_workloads.Prng.float rng < 0.7 then begin
              (* crosses immediately: a trade record goes to the log and
                 lives to the end of the run *)
              let rec_ = Rt.in_frame rt log_trade (fun () -> pool_alloc ()) in
              Rt.touch rt rec_ 1
            end
            else begin
              (* rests in the book for a while (medium-lived) *)
              let entry = Rt.in_frame rt book_insert (fun () -> pool_alloc ()) in
              Queue.push entry book;
              if Queue.length book > 50 then Rt.free rt (Queue.pop book)
            end);
        Rt.free rt buf
      done);
  Rt.finish rt

let () =
  let config = Lifetime.Config.default in
  let train = order_book ~input:"monday" ~n_orders:5000 in
  let test = order_book ~input:"tuesday" ~n_orders:20000 in
  Printf.printf "order-book workload: %d objects traced\n\n"
    (Lp_trace.Trace.total_objects test);

  (* which call-chain depth is needed to tell the three behaviours apart?
     (all three allocation helpers sit under `submit`, so depth-1 chains
     cannot separate them — the Table 6 effect on a custom program) *)
  print_endline "call-chain length sweep (predicted short-lived bytes %):";
  List.iter
    (fun policy_len ->
      let policy =
        match policy_len with
        | 0 -> Lp_callchain.Site.Complete_chain
        | n -> Lp_callchain.Site.Last_callers n
      in
      let config = { config with policy } in
      let _, e = Lifetime.Evaluate.train_and_evaluate ~config ~train ~test in
      Printf.printf "  %-14s %5.1f%%\n"
        (if policy_len = 0 then "complete chain" else Printf.sprintf "length-%d" policy_len)
        (Lifetime.Evaluate.predicted_pct e))
    [ 1; 2; 3; 0 ];
  print_newline ();

  let table = Lifetime.Train.collect ~config train in
  let predictor = Lifetime.Predictor.build ~config ~funcs:train.funcs table in
  let sim = Lifetime.Simulate.run ~config ~oracle:(Lifetime.Oracle.static predictor) ~test () in
  Printf.printf "arena simulation: %.1f%% of allocations bump-allocated;\n"
    (Lp_allocsim.Metrics.arena_alloc_pct (Lifetime.Simulate.arena_len4 sim));
  Printf.printf "alloc+free cost %.0f instr vs %.0f for first-fit.\n"
    ((Lifetime.Simulate.arena_len4 sim).instr_per_alloc +. (Lifetime.Simulate.arena_len4 sim).instr_per_free)
    ((Lifetime.Simulate.first_fit sim).instr_per_alloc +. (Lifetime.Simulate.first_fit sim).instr_per_free)
